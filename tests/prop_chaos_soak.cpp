// Property: under seeded chaos (crash-and-rejoin, fail-slow, NIC flaps,
// writer crashes and control-plane loss/delay all active at once) every
// upload either completes or fails cleanly — the simulation never hangs —
// no file stays under construction past the lease recovery budget unless a
// live client still renews its lease, and identical (cluster seed, chaos
// seed) pairs reproduce identical timelines. This is the soak harness for
// the hardened control plane: retries, backoff, recovery budgets,
// quarantine and lease recovery must bound every failure mode the chaos
// engine can produce.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "faults/fault_injector.hpp"
#include "metrics/report.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/metrics_registry.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

faults::ChaosRates soak_rates() {
  faults::ChaosRates rates;
  rates.crash_per_minute = 1.0;
  rates.fail_slow_per_minute = 2.0;
  rates.flap_per_minute = 1.0;
  // Writer crashes join the soak. Uploads only last a few simulated
  // seconds (a handful of 500 ms chaos ticks), so the per-minute rate is
  // deliberately high: at 8/min roughly one upload in four loses its
  // writer, enough for lease recovery to fire across 50 seeds while most
  // uploads still complete.
  rates.client_crash_per_minute = 8.0;
  rates.rpc_loss = 0.02;
  rates.rpc_delay_mean = milliseconds(1);
  rates.rpc_delay_jitter = milliseconds(2);
  rates.rejoin_delay = seconds(5);
  rates.fail_slow_duration = seconds(8);
  rates.fail_slow_factor = 8.0;
  rates.flap_duration = seconds(2);
  rates.client_rejoin_delay = seconds(8);
  // At-rest decay joins the soak: with a handful of finalized replicas per
  // node and 500 ms ticks this lands roughly one flip per run, enough for
  // the scanner/report/invalidate path to fire across the seed sweep while
  // drawing from its own RNG stream (the other classes' timelines don't
  // move).
  rates.bitrot_per_replica_hour = 30.0;
  return rates;
}

cluster::ClusterSpec soak_spec(
    std::uint64_t seed,
    hdfs::DataFidelity fidelity = hdfs::DataFidelity::kPacket) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.fidelity = fidelity;
  spec.hdfs.block_size = 4 * kMiB;
  spec.hdfs.ack_timeout = seconds(2);
  spec.hdfs.datanode_dead_interval = seconds(8);
  // Short lease limits so writer-crash recovery resolves within the soak.
  spec.hdfs.lease_soft_limit = seconds(6);
  spec.hdfs.lease_hard_limit = seconds(12);
  spec.hdfs.lease_monitor_interval = seconds(2);
  // Scrub at a modest budget so soak-injected rot is detected and reported
  // while the chaos is still running.
  spec.hdfs.scanner_bytes_per_second = 8 * kMiB;
  return spec;
}

struct SoakResult {
  SimDuration elapsed = 0;
  std::uint64_t events = 0;
  int recoveries = 0;
  int quarantine_events = 0;
  int under_replication_events = 0;
  std::uint64_t rpc_retries = 0;
  bool failed = false;
  std::uint64_t faults = 0;
  std::uint64_t lease_expiries = 0;
  std::uint64_t uc_blocks_recovered = 0;
  Bytes bytes_salvaged = 0;
  std::uint64_t orphans_abandoned = 0;
  std::uint64_t bitrot_flips = 0;
  std::uint64_t scrub_rot_detected = 0;
  std::uint64_t bad_replica_reports = 0;
  std::uint64_t replicas_invalidated = 0;
  std::uint64_t nn_crashes = 0;
  std::uint64_t nn_restarts = 0;
  std::uint64_t nn_failovers = 0;
  std::uint64_t safe_mode_entries = 0;
  bool file_closed = false;
  // Gray-failure defense accounting (populated only when the soak runs with
  // the PR-8 defenses enabled).
  int slow_evictions = 0;
  int hedges = 0;
  int hedge_wins = 0;
  std::uint64_t slow_node_reports = 0;
  SimDuration read_elapsed = 0;
  bool read_failed = false;
  /// block value -> sorted (node, bytes) pairs.
  std::map<std::int64_t, std::map<std::int64_t, Bytes>> replicas;

  bool operator==(const SoakResult& other) const = default;
};

/// Drives one chaos-soaked upload with a bounded loop. The hard property is
/// "complete or fail cleanly before `deadline`": if neither happens the test
/// fails instead of hanging.
SoakResult soak_once(
    std::uint64_t seed,
    hdfs::DataFidelity fidelity = hdfs::DataFidelity::kPacket,
    const faults::ChaosRates& rates = soak_rates(),
    bool gray_defenses = false) {
  cluster::ClusterSpec spec = soak_spec(seed, fidelity);
  if (gray_defenses) {
    // The registry feeds the hedge pace baseline and the in-flight gauge;
    // reset before cluster construction (datanodes cache histogram
    // pointers) so each run's defense timeline is self-contained.
    metrics::global_registry().reset();
    spec.hdfs.hedged_reads = true;
    spec.hdfs.slow_node_eviction = true;
  }
  // Flight-recorder invariant, asserted at the end of every soak: a run
  // that completes (or fails cleanly) must trip no watchdog. The default
  // goodput-stall window has to ride out every legitimate zero-progress gap
  // chaos produces — namenode outages, safe mode, retry backoff — or the
  // monitor would page a human on healthy recoveries.
  metrics::FlightRecorder flight;
  metrics::ScopedFlightInstall flight_install(&flight);
  flight.begin_run("soak", seed);
  Cluster cluster(spec);
  cluster.throttle_cross_rack(Bandwidth::mbps(60));
  if (rates.nn_failover) cluster.enable_standby();
  faults::FaultInjector injector(cluster, /*chaos_seed=*/seed * 7919 + 1);
  injector.start_chaos(rates);

  const Protocol protocol =
      (seed % 2 == 0) ? Protocol::kHdfs : Protocol::kSmarth;
  std::optional<hdfs::StreamStats> stats;
  cluster.upload("/soak", 16 * kMiB, protocol,
                 [&stats](const hdfs::StreamStats& s) { stats = s; });

  const SimTime deadline = seconds(600);
  while (!stats.has_value() && cluster.sim().now() < deadline) {
    EXPECT_TRUE(
        cluster.sim().run_until(cluster.sim().now() + milliseconds(250)));
  }
  EXPECT_TRUE(stats.has_value())
      << "seed " << seed << ": upload neither completed nor failed by "
      << to_seconds(deadline) << "s — the control plane hung";

  SoakResult result;
  if (!stats.has_value()) {
    result.failed = true;
    return result;
  }
  // With the defenses on, read the file back while chaos is still running so
  // hedged reads race live fail-slow windows, not a healed cluster.
  std::optional<hdfs::ReadStats> read;
  if (gray_defenses && !stats->failed) {
    read = cluster.run_download("/soak");
  }
  injector.stop_chaos();
  // Control-plane outages must resolve once chaos stops: any scheduled
  // restart/failover lands and safe mode exits within its max wait. An
  // upload stuck under construction because the namenode never left safe
  // mode would be a liveness bug, so this is asserted, not just waited for.
  const SimTime control_deadline = cluster.sim().now() +
                                   rates.nn_restart_delay +
                                   soak_spec(seed).hdfs.safe_mode_max_wait +
                                   seconds(5);
  while (cluster.sim().now() < control_deadline &&
         (cluster.namenode_crashed() || cluster.namenode().safe_mode())) {
    cluster.sim().run_until(cluster.sim().now() + milliseconds(250));
  }
  EXPECT_FALSE(cluster.namenode_crashed())
      << "seed " << seed << ": namenode never restored after chaos stopped";
  EXPECT_FALSE(cluster.namenode().safe_mode())
      << "seed " << seed << ": safe mode never exited after chaos stopped";
  // Let in-flight fault windows close so the replica fingerprint is stable.
  cluster.sim().run_until(cluster.sim().now() + seconds(30));

  // Liveness invariant: no file stays under construction forever. Either
  // the upload closed it, or — when the writer crashed — the lease monitor
  // must close it at a consistent prefix within the hard limit plus the
  // recovery retry budget. A file still UC under a *live, renewing* holder
  // is legitimate (HDFS keeps a lease as long as its process renews).
  const SimDuration recovery_budget =
      soak_spec(seed).hdfs.lease_hard_limit +
      soak_spec(seed).hdfs.lease_monitor_interval +
      soak_spec(seed).hdfs.lease_recovery_retry_interval *
          (soak_spec(seed).hdfs.lease_recovery_max_attempts + 1);
  const SimTime uc_deadline = cluster.sim().now() + recovery_budget;
  while (cluster.sim().now() < uc_deadline) {
    const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/soak");
    if (entry == nullptr || entry->state == hdfs::FileState::kClosed ||
        !cluster.namenode().lease_manager().hard_expired(
            entry->lease_holder, cluster.sim().now())) {
      break;
    }
    cluster.sim().run_until(cluster.sim().now() + milliseconds(250));
  }
  if (const hdfs::FileEntry* entry =
          cluster.namenode().file_by_path("/soak")) {
    const bool closed = entry->state == hdfs::FileState::kClosed;
    EXPECT_TRUE(closed ||
                !cluster.namenode().lease_manager().hard_expired(
                    entry->lease_holder, cluster.sim().now()))
        << "seed " << seed
        << ": file abandoned under construction with an expired lease";
    result.file_closed = closed;
  }

  result.elapsed = stats->elapsed();
  result.events = cluster.sim().events_executed();
  result.recoveries = stats->recoveries;
  result.quarantine_events = stats->quarantine_events;
  result.under_replication_events = stats->under_replication_events;
  result.rpc_retries = stats->rpc_retries;
  result.failed = stats->failed;
  result.faults = injector.counts().total();
  result.lease_expiries = cluster.namenode().lease_expiries();
  result.uc_blocks_recovered = cluster.namenode().uc_blocks_recovered();
  result.bytes_salvaged = cluster.namenode().bytes_salvaged();
  result.orphans_abandoned = cluster.namenode().orphans_abandoned();
  result.bitrot_flips = injector.counts().bitrot_flips;
  result.bad_replica_reports = cluster.namenode().bad_replica_reports();
  result.nn_crashes = injector.counts().nn_crashes;
  result.nn_restarts = injector.counts().nn_restarts;
  result.nn_failovers = injector.counts().nn_failovers;
  result.safe_mode_entries = cluster.namenode().safe_mode_entries();
  result.slow_evictions = stats->slow_evictions;
  result.slow_node_reports = cluster.namenode().slow_node_reports();
  if (read.has_value()) {
    result.hedges = read->hedged_reads;
    result.hedge_wins = read->hedge_wins;
    result.read_elapsed = read->elapsed();
    result.read_failed = read->failed;
  }
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    result.scrub_rot_detected += cluster.datanode(i).scanner().rot_detected();
    result.replicas_invalidated += cluster.datanode(i).replicas_invalidated();
    for (const auto& replica :
         cluster.datanode(i).block_store().all_replicas()) {
      result.replicas[replica.block.value()][static_cast<std::int64_t>(i)] =
          replica.bytes;
    }
  }
  flight.finish_run(cluster.sim().now());
  if (!result.failed) {
    std::string tripped;
    for (const metrics::WatchdogFiring& f : flight.runs()[0].firings) {
      tripped += f.monitor + " @" + std::to_string(to_seconds(f.at)) +
                 "s: " + f.reason + "; ";
    }
    EXPECT_EQ(flight.total_firings(), 0u)
        << "seed " << seed << ": a completing soak run tripped " << tripped;
  }
  return result;
}

/// Seed count for the sweep: 50 per-PR, raised to 500 by the nightly CI job
/// through SMARTH_SOAK_SEEDS.
std::uint64_t soak_seed_count() {
  if (const char* env = std::getenv("SMARTH_SOAK_SEEDS")) {
    const std::uint64_t n = std::strtoull(env, nullptr, 10);
    if (n > 0) return n;
  }
  return 50;
}

TEST(ChaosSoak, SeedSweepCompletesOrFailsCleanly) {
  const std::uint64_t seeds = soak_seed_count();
  std::uint64_t completed = 0;
  std::uint64_t clean_failures = 0;
  std::uint64_t total_faults = 0;
  std::uint64_t total_lease_expiries = 0;
  std::uint64_t total_bitrot_flips = 0;
  std::uint64_t total_scrub_detected = 0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SoakResult result = soak_once(seed);
    if (HasFatalFailure()) return;
    total_faults += result.faults;
    total_lease_expiries += result.lease_expiries;
    total_bitrot_flips += result.bitrot_flips;
    total_scrub_detected += result.scrub_rot_detected;
    if (result.failed) {
      ++clean_failures;
    } else {
      ++completed;
    }
  }
  // The rates are calibrated so chaos actually bites, yet the hardened
  // control plane rides most of it out.
  EXPECT_GT(total_faults, 0u);
  // Writer crashes must actually occur across the soak — otherwise the
  // lease-recovery invariant above was never exercised.
  EXPECT_GT(total_lease_expiries, 0u);
  // At-rest decay must both happen and get caught by the scrubbers, or the
  // integrity path sat idle for the whole soak.
  EXPECT_GT(total_bitrot_flips, 0u);
  EXPECT_GT(total_scrub_detected, 0u);
  EXPECT_GT(completed, seeds / 2) << "completed=" << completed
                                  << " clean_failures=" << clean_failures;
}

TEST(ChaosSoak, IdenticalSeedsProduceIdenticalTimelines) {
  for (std::uint64_t seed : {3u, 17u, 42u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SoakResult a = soak_once(seed);
    const SoakResult b = soak_once(seed);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.recoveries, b.recoveries);
    EXPECT_EQ(a.quarantine_events, b.quarantine_events);
    EXPECT_EQ(a.rpc_retries, b.rpc_retries);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.lease_expiries, b.lease_expiries);
    EXPECT_EQ(a.uc_blocks_recovered, b.uc_blocks_recovered);
    EXPECT_EQ(a.bytes_salvaged, b.bytes_salvaged);
    EXPECT_EQ(a.orphans_abandoned, b.orphans_abandoned);
    EXPECT_EQ(a.bitrot_flips, b.bitrot_flips);
    EXPECT_EQ(a.scrub_rot_detected, b.scrub_rot_detected);
    EXPECT_EQ(a.bad_replica_reports, b.bad_replica_reports);
    EXPECT_EQ(a.replicas_invalidated, b.replicas_invalidated);
    EXPECT_EQ(a.file_closed, b.file_closed);
    EXPECT_EQ(a.replicas, b.replicas);
  }
}

// Block fidelity must survive the same chaos: coalescing per-packet events
// into macro-transfer units cannot introduce hangs or nondeterminism in the
// recovery machinery. A subset of the sweep runs in block mode, and a
// same-seed pair must reproduce the identical timeline there too.
TEST(ChaosSoak, BlockFidelitySubsetCompletesOrFailsCleanly) {
  const std::uint64_t seeds = std::min<std::uint64_t>(soak_seed_count(), 12);
  std::uint64_t completed = 0;
  std::uint64_t clean_failures = 0;
  std::uint64_t total_faults = 0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SoakResult result = soak_once(seed, hdfs::DataFidelity::kBlock);
    if (HasFatalFailure()) return;
    total_faults += result.faults;
    if (result.failed) {
      ++clean_failures;
    } else {
      ++completed;
    }
  }
  EXPECT_GT(total_faults, 0u);
  EXPECT_GT(completed, seeds / 2) << "completed=" << completed
                                  << " clean_failures=" << clean_failures;
}

TEST(ChaosSoak, BlockFidelityIdenticalSeedsProduceIdenticalTimelines) {
  for (std::uint64_t seed : {5u, 17u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SoakResult a = soak_once(seed, hdfs::DataFidelity::kBlock);
    const SoakResult b = soak_once(seed, hdfs::DataFidelity::kBlock);
    EXPECT_EQ(a, b);
  }
}

/// The soak rates with control-plane loss added on top: the namenode itself
/// crashes mid-chaos and comes back via cold restart, or — on a third of the
/// seeds — via standby failover.
faults::ChaosRates nn_soak_rates(std::uint64_t seed) {
  faults::ChaosRates rates = soak_rates();
  rates.nn_crash_per_minute = 8.0;
  rates.nn_restart_delay = seconds(3);
  rates.nn_failover = (seed % 3 == 0);
  // Control-plane outages stretch every upload across several extra chaos
  // ticks; at the base sweep's writer-crash rate most runs would lose their
  // writer before the namenode machinery gets exercised. The base sweep owns
  // lease-recovery coverage, so here writer crashes are dialed down.
  rates.client_crash_per_minute = 2.0;
  return rates;
}

// Satellite invariant: after a namenode restart and safe-mode exit no upload
// is left stuck under construction — every file either closes (upload or
// lease recovery) or its writer is demonstrably still alive and renewing.
// soak_once asserts exactly that (control-plane restored, safe mode exited,
// no abandoned UC file) for every run; this sweep makes sure those
// assertions actually see namenode crashes, restarts and failovers.
TEST(ChaosSoak, NamenodeCrashSubsetLeavesNoUploadStuckInUc) {
  const std::uint64_t seeds = std::min<std::uint64_t>(soak_seed_count(), 16);
  std::uint64_t completed = 0;
  std::uint64_t clean_failures = 0;
  std::uint64_t total_nn_crashes = 0;
  std::uint64_t total_nn_restarts = 0;
  std::uint64_t total_nn_failovers = 0;
  std::uint64_t total_safe_mode_entries = 0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SoakResult result =
        soak_once(seed, hdfs::DataFidelity::kPacket, nn_soak_rates(seed));
    if (HasFatalFailure()) return;
    total_nn_crashes += result.nn_crashes;
    total_nn_restarts += result.nn_restarts;
    total_nn_failovers += result.nn_failovers;
    total_safe_mode_entries += result.safe_mode_entries;
    if (result.failed) {
      ++clean_failures;
    } else {
      ++completed;
    }
  }
  // The control plane must actually have died and recovered across the sweep
  // or the invariant was never exercised.
  EXPECT_GT(total_nn_crashes, 0u);
  EXPECT_EQ(total_nn_restarts + total_nn_failovers, total_nn_crashes);
  EXPECT_GT(total_safe_mode_entries, 0u);
  EXPECT_GT(completed, seeds / 2) << "completed=" << completed
                                  << " clean_failures=" << clean_failures;
}

TEST(ChaosSoak, NamenodeCrashIdenticalSeedsProduceIdenticalTimelines) {
  for (std::uint64_t seed : {3u, 6u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SoakResult a =
        soak_once(seed, hdfs::DataFidelity::kPacket, nn_soak_rates(seed));
    const SoakResult b =
        soak_once(seed, hdfs::DataFidelity::kPacket, nn_soak_rates(seed));
    EXPECT_EQ(a, b);
  }
}

/// Fail-slow-heavy rates for the gray-failure subset: frequent, long,
/// severe slow windows and nothing else, so the PR-8 defenses — not the
/// crash machinery — are the only thing standing between an upload and the
/// straggler.
faults::ChaosRates fail_slow_heavy_rates() {
  faults::ChaosRates rates;
  rates.fail_slow_per_minute = 6.0;
  rates.fail_slow_duration = seconds(12);
  rates.fail_slow_factor = 8.0;
  return rates;
}

// Gray-failure subset: hedged reads + slow-node eviction enabled under
// fail-slow-heavy chaos. Every upload and read-back must complete (gray
// nodes never break liveness, only pace), and the hedge budget gauge must
// return to zero after every run — a leaked slot would eventually deny all
// hedging.
TEST(ChaosSoak, FailSlowHeavyDefensesOnCompletesWithoutHedgeLeak) {
  const std::uint64_t seeds = std::min<std::uint64_t>(soak_seed_count(), 12);
  std::uint64_t completed = 0;
  std::uint64_t total_faults = 0;
  std::uint64_t total_hedges = 0;
  std::uint64_t total_evictions = 0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SoakResult result = soak_once(
        seed, hdfs::DataFidelity::kPacket, fail_slow_heavy_rates(),
        /*gray_defenses=*/true);
    if (HasFatalFailure()) return;
    total_faults += result.faults;
    total_hedges += static_cast<std::uint64_t>(result.hedges);
    total_evictions += static_cast<std::uint64_t>(result.slow_evictions);
    // Pure fail-slow never kills an upload or a read: pace drops, liveness
    // does not.
    EXPECT_FALSE(result.failed);
    EXPECT_FALSE(result.read_failed);
    if (!result.failed) ++completed;
    const auto* gauge =
        metrics::global_registry().find_gauge("read.hedges_in_flight");
    EXPECT_DOUBLE_EQ(gauge != nullptr ? gauge->value() : 0.0, 0.0)
        << "hedge budget slot leaked";
  }
  EXPECT_EQ(completed, seeds);
  // The chaos must actually have bitten and the defenses must actually have
  // fired somewhere across the sweep, or this test exercised nothing.
  EXPECT_GT(total_faults, 0u);
  EXPECT_GT(total_hedges + total_evictions, 0u);
}

TEST(ChaosSoak, FailSlowHeavyDefensesOnIdenticalTimelines) {
  for (std::uint64_t seed : {2u, 9u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SoakResult a = soak_once(seed, hdfs::DataFidelity::kPacket,
                                   fail_slow_heavy_rates(), true);
    const SoakResult b = soak_once(seed, hdfs::DataFidelity::kPacket,
                                   fail_slow_heavy_rates(), true);
    EXPECT_EQ(a, b);
  }
}

// The issue's acceptance scenario: a crash-and-rejoin plus a fail-slow node
// plus a checksum offender during one upload. The upload must complete and
// the robustness evidence (recoveries, quarantine, retry accounting) must
// surface through StreamStats into the metrics fault summary.
TEST(ChaosScenario, CrashRejoinFailSlowUploadCompletesWithEvidence) {
  Cluster cluster(soak_spec(23));
  cluster.throttle_cross_rack(Bandwidth::mbps(60));
  faults::FaultInjector injector(cluster, /*chaos_seed=*/23);
  injector.crash_and_rejoin(2, seconds(1), seconds(12));
  injector.fail_slow(1, seconds(1), seconds(20), /*disk_factor=*/8.0,
                     /*nic_factor=*/8.0);
  injector.corrupt_nth_packet(4, 30);

  std::optional<hdfs::StreamStats> stats;
  cluster.upload("/evidence", 24 * kMiB, Protocol::kHdfs,
                 [&stats](const hdfs::StreamStats& s) { stats = s; });
  const SimTime deadline = seconds(600);
  while (!stats.has_value() && cluster.sim().now() < deadline) {
    ASSERT_TRUE(
        cluster.sim().run_until(cluster.sim().now() + milliseconds(250)));
  }
  ASSERT_TRUE(stats.has_value());
  EXPECT_FALSE(stats->failed);
  EXPECT_GE(stats->recoveries, 1);
  EXPECT_GE(stats->quarantine_events, 1);
  // The upload can finish before the 12 s rejoin lands; run the cluster past
  // it so the reboot and its re-registration are observable.
  cluster.sim().run_until(std::max(cluster.sim().now(), seconds(12)) +
                          seconds(10));

  metrics::FaultSummary summary;
  summary.fold(*stats);
  summary.rpc_calls_dropped = cluster.rpc().calls_dropped();
  summary.datanode_reregistrations = cluster.namenode().reregistrations();
  summary.faults_injected = injector.counts().total();
  EXPECT_EQ(summary.uploads, 1);
  EXPECT_EQ(summary.failed_uploads, 0);
  EXPECT_GE(summary.quarantine_events, 1);
  EXPECT_EQ(summary.datanode_reregistrations, 1u);
  EXPECT_GE(summary.faults_injected, 3u);
  // The rendered table carries every robustness counter.
  const std::string table = metrics::render_fault_summary(summary);
  EXPECT_NE(table.find("recovery MTTR"), std::string::npos);
  EXPECT_NE(table.find("quarantine events"), std::string::npos);
  EXPECT_NE(table.find("under-replication events"), std::string::npos);
}

}  // namespace
}  // namespace smarth
