#include "rpc/rpc_bus.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace smarth::rpc {
namespace {

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : sim_(1), net_(sim_), bus_(net_) {
    client_ = net_.add_node("client", "/r0", Bandwidth::mbps(100));
    server_ = net_.add_node("server", "/r0", Bandwidth::mbps(100));
  }
  sim::Simulation sim_;
  net::Network net_;
  RpcBus bus_;
  NodeId client_, server_;
};

TEST_F(RpcTest, CallRoundTrip) {
  int response = 0;
  bus_.call<int>(client_, server_, [] { return 42; },
                 [&](int v) { response = v; });
  sim_.run();
  EXPECT_EQ(response, 42);
  EXPECT_EQ(bus_.calls_started(), 1u);
  EXPECT_EQ(bus_.calls_completed(), 1u);
}

TEST_F(RpcTest, CallPaysNetworkAndServiceTime) {
  SimTime responded_at = -1;
  bus_.call<int>(client_, server_, [] { return 1; },
                 [&](int) { responded_at = sim_.now(); });
  sim_.run();
  // Request wire + service + response wire; must exceed the pure service
  // time and two propagation delays.
  EXPECT_GT(responded_at, bus_.config().service_time);
  EXPECT_LT(responded_at, milliseconds(10));
}

TEST_F(RpcTest, CallAsyncDeferredResponse) {
  int response = 0;
  bus_.call_async<int>(
      client_, server_,
      [this](std::function<void(int)> respond) {
        // Server finishes the work one second later.
        sim_.schedule_after(seconds(1),
                            [respond = std::move(respond)] { respond(7); });
      },
      [&](int v) { response = v; });
  sim_.run();
  EXPECT_EQ(response, 7);
  EXPECT_GT(sim_.now(), seconds(1));
}

TEST_F(RpcTest, DownServerNeverResponds) {
  bus_.set_host_down(server_, true);
  bool responded = false;
  bus_.call<int>(client_, server_, [] { return 1; },
                 [&](int) { responded = true; });
  sim_.run();
  EXPECT_FALSE(responded);
  EXPECT_EQ(bus_.calls_completed(), 0u);
}

TEST_F(RpcTest, ServerDiesMidFlight) {
  bool responded = false;
  bool handled = false;
  bus_.call<int>(client_, server_,
                 [&] {
                   handled = true;
                   return 1;
                 },
                 [&](int) { responded = true; });
  // Kill the server before the request can arrive.
  sim_.schedule_at(1, [&] { bus_.set_host_down(server_, true); });
  sim_.run();
  EXPECT_FALSE(handled);
  EXPECT_FALSE(responded);
}

TEST_F(RpcTest, HostCanComeBack) {
  bus_.set_host_down(server_, true);
  bus_.set_host_down(server_, false);
  int response = 0;
  bus_.call<int>(client_, server_, [] { return 5; },
                 [&](int v) { response = v; });
  sim_.run();
  EXPECT_EQ(response, 5);
}

TEST_F(RpcTest, NotifyIsOneWay) {
  bool handled = false;
  bus_.notify(client_, server_, [&] { handled = true; });
  sim_.run();
  EXPECT_TRUE(handled);
}

TEST_F(RpcTest, NotifyToDownHostDropped) {
  bus_.set_host_down(server_, true);
  bool handled = false;
  bus_.notify(client_, server_, [&] { handled = true; });
  sim_.run();
  EXPECT_FALSE(handled);
}

TEST_F(RpcTest, PointerResponseType) {
  // Responses must be copyable (std::function constraint); shared ownership
  // is the supported way to move heavyweight payloads.
  std::shared_ptr<int> got;
  bus_.call<std::shared_ptr<int>>(
      client_, server_, [] { return std::make_shared<int>(9); },
      [&](std::shared_ptr<int> v) { got = std::move(v); });
  sim_.run();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 9);
}

TEST_F(RpcTest, ControlPriorityBypassesBulkQueue) {
  // Saturate the client's egress with bulk data, then issue an RPC: the
  // request must not wait for megabytes of bulk to serialize.
  for (int i = 0; i < 64; ++i) {
    net_.send(client_, server_, 64 * kKiB, [] {});
  }
  SimTime responded_at = -1;
  bus_.call<int>(client_, server_, [] { return 1; },
                 [&](int) { responded_at = sim_.now(); });
  sim_.run();
  const SimDuration bulk_total =
      Bandwidth::mbps(100).transmit_time(64 * 64 * kKiB);
  EXPECT_LT(responded_at, bulk_total / 4);
}

}  // namespace
}  // namespace smarth::rpc
