#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace smarth {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit in 1000 draws
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, IndexCoversContainer) {
  Rng rng(17);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) counts[rng.index(4)]++;
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  // The child must not replay the parent's sequence.
  Rng parent_copy(23);
  (void)parent_copy.next();  // advance past the fork draw
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next() == parent_copy.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(SplitMix, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), first);
  EXPECT_NE(sm.next(), first);
}

}  // namespace
}  // namespace smarth
