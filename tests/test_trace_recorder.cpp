// Tests for the tracing + metrics subsystem: span/track bookkeeping in the
// recorder, the metrics registry, Chrome trace_event export (schema-checked
// by the built-in validator), the golden two-block SMARTH upload trace, and
// straggler attribution naming a throttled datanode.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/straggler.hpp"
#include "trace/trace_recorder.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

cluster::ClusterSpec small_spec(std::uint64_t seed = 42) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 4 * kMiB;
  return spec;
}

TEST(TraceRecorder, SpansCarryTimestampsAndDurations) {
  trace::TraceRecorder rec;
  SimTime now = 0;
  rec.set_time_source([&now] { return now; });
  const int pid = rec.begin_run("RUN");

  now = milliseconds(5);
  trace::SpanHandle span = rec.begin_span(trace::Category::kBlock, "block 0",
                                          "stream", {{"block", "blk-0"}});
  EXPECT_TRUE(span.valid());
  EXPECT_EQ(rec.open_span_count(), 1u);
  now = milliseconds(12);
  rec.end_span(span, {{"outcome", "ok"}});
  EXPECT_EQ(rec.open_span_count(), 0u);

  const trace::TraceEvent* ev = nullptr;
  for (const trace::TraceEvent& e : rec.events()) {
    if (e.ph == 'X') ev = &e;
  }
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->pid, pid);
  EXPECT_EQ(ev->ts, milliseconds(5));
  EXPECT_EQ(ev->dur, milliseconds(7));
  // Args from begin and end are merged in order.
  ASSERT_EQ(ev->args.size(), 2u);
  EXPECT_EQ(ev->args[0].first, "block");
  EXPECT_EQ(ev->args[0].second, "blk-0");
  EXPECT_EQ(ev->args[1].first, "outcome");
}

TEST(TraceRecorder, EndSpanIsIdempotentAndInertHandleIsSafe) {
  trace::TraceRecorder rec;
  rec.begin_run("RUN");
  trace::SpanHandle inert;
  EXPECT_FALSE(inert.valid());
  rec.end_span(inert);  // no-op, no crash

  trace::SpanHandle span =
      rec.begin_span(trace::Category::kRun, "client", "upload");
  rec.end_span(span);
  const std::size_t events_after_first_close = rec.events().size();
  rec.end_span(span, {{"ignored", "true"}});  // second close is a no-op
  EXPECT_EQ(rec.events().size(), events_after_first_close);
  EXPECT_EQ(rec.open_span_count(), 0u);
}

TEST(TraceRecorder, TracksGetDenseTidsAndOneMetadataEventEach) {
  trace::TraceRecorder rec;
  rec.begin_run("RUN");
  const std::int64_t client = rec.track("client");
  const std::int64_t block = rec.track("block 0");
  EXPECT_NE(client, block);
  EXPECT_EQ(rec.track("client"), client);  // stable on repeat lookups

  int thread_names = 0;
  for (const trace::TraceEvent& e : rec.events()) {
    if (e.ph == 'M' && e.name == "thread_name") ++thread_names;
  }
  EXPECT_EQ(thread_names, 2);

  // A second run gets its own dense tid space and its own metadata.
  rec.begin_run("RUN2");
  EXPECT_EQ(rec.track("client"), client);  // dense from 0 again
}

TEST(TraceRecorder, DisabledModeIsInert) {
  // No recorder installed: the global hooks must report inactive and every
  // instrumented struct's embedded handle stays invalid.
  ASSERT_FALSE(trace::active());
  trace::SpanHandle handle;
  EXPECT_FALSE(handle.valid());
  // A full upload with tracing disabled exercises every guarded site.
  metrics::global_registry().reset();
  Cluster cluster(small_spec());
  const auto stats =
      cluster.run_upload("/data/a.bin", 8 * kMiB, Protocol::kSmarth);
  EXPECT_FALSE(stats.failed);
}

TEST(TraceRecorder, HopStatsAccumulatePerPipelinePosition) {
  trace::TraceRecorder rec;
  const int pid = rec.begin_run("RUN");
  rec.record_hop(PipelineId{7}, NodeId{3}, 0, milliseconds(2));
  rec.record_hop(PipelineId{7}, NodeId{3}, 0, milliseconds(4));
  rec.record_hop(PipelineId{7}, NodeId{5}, 1, milliseconds(1));
  const auto& hops = rec.hops(pid);
  ASSERT_EQ(hops.size(), 1u);
  const std::vector<trace::HopStats>& pipeline = hops.at(7);
  ASSERT_EQ(pipeline.size(), 2u);
  for (const trace::HopStats& h : pipeline) {
    if (h.position == 0) {
      EXPECT_EQ(h.node, NodeId{3});
      EXPECT_EQ(h.ack_latency_ns.count(), 2u);
      EXPECT_DOUBLE_EQ(h.ack_latency_ns.mean(),
                       static_cast<double>(milliseconds(3)));
    }
  }
  EXPECT_TRUE(rec.hops(pid + 1).empty());  // unknown run: empty, no insert
}

TEST(MetricsRegistry, CountersGaugesHistograms) {
  metrics::Registry reg;
  reg.counter("a").add();
  reg.counter("a").add(4);
  EXPECT_EQ(reg.counter("a").value(), 5u);
  reg.gauge("g").set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 2.5);
  auto& h = reg.histogram("lat_ns");
  for (int i = 1; i <= 100; ++i) h.observe(i * 1.0e6);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_GT(h.quantile(0.95), h.quantile(0.50));
  EXPECT_EQ(reg.find_counter("a")->value(), 5u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a\":5"), std::string::npos);
  EXPECT_NE(json.find("\"p95_ns\""), std::string::npos);
  const std::string csv = reg.to_csv("smarth");
  EXPECT_NE(csv.find("smarth,counter,a,,5"), std::string::npos);
  EXPECT_NE(csv.find("smarth,histogram,lat_ns,100"), std::string::npos);

  reg.reset();
  EXPECT_EQ(reg.find_counter("a"), nullptr);
  EXPECT_EQ(reg.find_histogram("lat_ns"), nullptr);
}

TEST(ChromeTrace, ExportPassesSchemaValidation) {
  trace::TraceRecorder rec;
  SimTime now = 0;
  rec.set_time_source([&now] { return now; });
  rec.begin_run("RUN \"quoted\"");  // exercises json escaping
  trace::SpanHandle span = rec.begin_span(trace::Category::kBlock, "block 0",
                                          "stream", {{"k", "v with space"}});
  now = milliseconds(3);
  rec.instant(trace::Category::kFault, "faults", "crash", {{"dn", "2"}});
  rec.end_span(span);
  // Leave one span open: the exporter must close it ("truncated") and still
  // emit valid JSON.
  trace::SpanHandle open =
      rec.begin_span(trace::Category::kRecovery, "client", "recovery");
  (void)open;

  const std::string json = trace::to_chrome_trace_json(rec);
  const trace::ValidationResult result = trace::validate_chrome_trace(json);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.event_count, 0u);
  EXPECT_NE(json.find("truncated"), std::string::npos);
}

TEST(ChromeTrace, GoldenTwoBlockSmarthUploadTrace) {
  metrics::global_registry().reset();
  trace::TraceRecorder rec;
  trace::ScopedInstall install(&rec);

  rec.begin_run("SMARTH");
  {
    Cluster cluster(small_spec());
    rec.set_time_source([&cluster] { return cluster.sim().now(); });
    const auto stats =
        cluster.run_upload("/data/a.bin", 8 * kMiB, Protocol::kSmarth);
    ASSERT_FALSE(stats.failed) << stats.failure_reason;
    EXPECT_EQ(stats.blocks, 2);
    rec.set_time_source(nullptr);
  }
  metrics::global_registry().reset();
  rec.begin_run("HDFS");
  {
    Cluster cluster(small_spec());
    rec.set_time_source([&cluster] { return cluster.sim().now(); });
    const auto stats =
        cluster.run_upload("/data/a.bin", 8 * kMiB, Protocol::kHdfs);
    ASSERT_FALSE(stats.failed) << stats.failure_reason;
    rec.set_time_source(nullptr);
  }

  const std::string json = trace::to_chrome_trace_json(rec);
  const trace::ValidationResult result = trace::validate_chrome_trace(json);
  ASSERT_TRUE(result.ok) << result.error;
  // Both protocol runs are present as separate processes...
  EXPECT_NE(json.find("\"SMARTH\""), std::string::npos);
  EXPECT_NE(json.find("\"HDFS\""), std::string::npos);
  // ...and the two concurrent-capable pipelines render as distinct block
  // tracks, with the lifecycle phases as complete spans.
  EXPECT_NE(json.find("\"block 0\""), std::string::npos);
  EXPECT_NE(json.find("\"block 1\""), std::string::npos);
  EXPECT_EQ(json.find("\"block 2\""), std::string::npos);
  for (const char* phase : {"allocate", "setup", "stream", "tail-ack"}) {
    EXPECT_NE(json.find(std::string("\"") + phase + "\""), std::string::npos)
        << phase;
  }
  // No span may leak past the upload's clean completion.
  EXPECT_EQ(rec.open_span_count(), 0u);
  EXPECT_EQ(json.find("truncated"), std::string::npos);
}

TEST(ChromeTrace, GoldenCounterTrack) {
  trace::TraceRecorder rec;
  SimTime now = 0;
  rec.set_time_source([&now] { return now; });
  rec.begin_run("RUN");
  rec.counter("flight", "nn.rpc.queue_depth", 0);
  now = seconds(1);
  rec.counter("flight", "nn.rpc.queue_depth", 17);
  rec.counter("flight", "client.addblock_p99_ns", 1.25e6);
  now = seconds(2);
  rec.counter("flight", "nn.rpc.queue_depth", 4);

  const std::string json = trace::to_chrome_trace_json(rec);
  const trace::ValidationResult result = trace::validate_chrome_trace(json);
  ASSERT_TRUE(result.ok) << result.error;
  // Counter samples export with *raw numeric* args (Perfetto only renders
  // counter tracks from numbers, not quoted strings)...
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":17}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":1250000}"), std::string::npos);
  EXPECT_EQ(json.find("\"value\":\"17\""), std::string::npos);
  // ...on the named counter track, at microsecond timestamps.
  EXPECT_NE(json.find("\"nn.rpc.queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000000"), std::string::npos);
}

TEST(ChromeTrace, ValidatorRejectsMalformedCounterEvents) {
  // A 'C' event with no args object has no value to plot.
  const std::string no_args =
      "{\"traceEvents\":[{\"name\":\"q\",\"cat\":\"run\",\"ph\":\"C\","
      "\"ts\":0,\"pid\":0,\"tid\":0}]}";
  EXPECT_FALSE(trace::validate_chrome_trace(no_args).ok);
  // Empty args: still nothing to plot.
  const std::string empty_args =
      "{\"traceEvents\":[{\"name\":\"q\",\"cat\":\"run\",\"ph\":\"C\","
      "\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{}}]}";
  EXPECT_FALSE(trace::validate_chrome_trace(empty_args).ok);
  // Quoted values render no counter track in Perfetto; reject them so a
  // regression in the exporter fails loudly here instead of silently
  // producing a blank track.
  const std::string quoted =
      "{\"traceEvents\":[{\"name\":\"q\",\"cat\":\"run\",\"ph\":\"C\","
      "\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{\"value\":\"17\"}}]}";
  EXPECT_FALSE(trace::validate_chrome_trace(quoted).ok);
  // The well-formed flavor of the same event passes.
  const std::string numeric =
      "{\"traceEvents\":[{\"name\":\"q\",\"cat\":\"run\",\"ph\":\"C\","
      "\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{\"value\":17}}]}";
  const trace::ValidationResult ok = trace::validate_chrome_trace(numeric);
  EXPECT_TRUE(ok.ok) << ok.error;
}

TEST(Straggler, ThrottledDatanodeNamedDominant) {
  metrics::global_registry().reset();
  trace::TraceRecorder rec;
  trace::ScopedInstall install(&rec);
  const int pid = rec.begin_run("SMARTH");
  Cluster cluster(small_spec());
  rec.set_time_source([&cluster] { return cluster.sim().now(); });
  // Datanode index 2 ("node-3") gets a starved NIC: every pipeline through
  // it stalls on that hop.
  const NodeId slow = cluster.datanode(2).node_id();
  cluster.throttle_datanode(2, Bandwidth::mbps(20));
  const auto stats =
      cluster.run_upload("/data/a.bin", 16 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  rec.set_time_source(nullptr);

  const trace::StragglerReport report = trace::straggler_report(rec, pid);
  EXPECT_EQ(report.dominant_node, slow) << report.text;
  EXPECT_GT(report.dominant_share, 0.0);
  EXPECT_NE(report.text.find("dominant straggler: " + slow.to_string()),
            std::string::npos)
      << report.text;
}

TEST(MetricsRegistry, RpcRetryCountersCoverStreamStats) {
  metrics::global_registry().reset();
  Cluster cluster(small_spec());
  rpc::RpcChaos chaos;
  chaos.loss_probability = 0.4;
  cluster.rpc().set_chaos(chaos);
  const auto stats =
      cluster.run_upload("/data/a.bin", 8 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  const metrics::Counter* retries =
      metrics::global_registry().find_counter("rpc.retries");
  ASSERT_NE(retries, nullptr);
  EXPECT_GT(retries->value(), 0u);
  // The registry sees every labeled call site (including ones that do not
  // report into StreamStats), so it can only be >= the stream's count.
  EXPECT_GE(retries->value(),
            static_cast<std::uint64_t>(stats.rpc_retries));
}

}  // namespace
}  // namespace smarth
