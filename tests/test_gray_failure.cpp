// Gray-failure defense tests (PR 8): hedged reads, write-pipeline slow-node
// eviction, and the namenode suspicion list. The fault here is always
// fail-slow — bandwidth divided, heartbeats healthy — so nothing in the
// crash/timeout machinery fires and the defenses must catch the slowness by
// pace alone.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "faults/fault_injector.hpp"
#include "hdfs/suspicion.hpp"
#include "trace/metrics_registry.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;
using cluster::small_cluster;

/// The slow victim for integration tests: datanode index 1 sits in rack0 on
/// the small cluster and reliably serves early pipelines and block-0 reads.
constexpr std::size_t kSlowIndex = 1;

double hedges_in_flight_gauge() {
  const auto* g =
      metrics::global_registry().find_gauge("read.hedges_in_flight");
  return g != nullptr ? g->value() : 0.0;
}

// --- Suspicion list (unit) --------------------------------------------------

TEST(SuspicionListTest, ReportsAccumulateAndCrossThreshold) {
  hdfs::SuspicionList list(seconds(30), /*threshold=*/2.0);
  const NodeId node{7};
  EXPECT_DOUBLE_EQ(list.score(node, seconds(1)), 0.0);
  list.report(node, 1.5, seconds(1));
  EXPECT_FALSE(list.suspect(node, seconds(1)));
  list.report(node, 1.5, seconds(1));
  EXPECT_TRUE(list.suspect(node, seconds(1)));
  EXPECT_EQ(list.reports(), 2u);
  EXPECT_EQ(list.suspects(seconds(1)), std::vector<NodeId>{node});
}

TEST(SuspicionListTest, ScoresHalveEveryHalfLife) {
  hdfs::SuspicionList list(seconds(30), /*threshold=*/2.0);
  const NodeId node{3};
  list.report(node, 4.0, seconds(0));
  EXPECT_NEAR(list.score(node, seconds(30)), 2.0, 1e-9);
  EXPECT_TRUE(list.suspect(node, seconds(30)));
  // One more half-life drops it below the threshold: a node that stops
  // generating evidence recovers without anyone clearing it.
  EXPECT_NEAR(list.score(node, seconds(60)), 1.0, 1e-9);
  EXPECT_FALSE(list.suspect(node, seconds(60)));
  EXPECT_TRUE(list.suspects(seconds(60)).empty());
}

TEST(SuspicionListTest, ClearForgetsTheNode) {
  hdfs::SuspicionList list(seconds(30), /*threshold=*/2.0);
  const NodeId node{5};
  list.report(node, 10.0, seconds(0));
  ASSERT_TRUE(list.suspect(node, seconds(0)));
  list.clear(node);
  EXPECT_FALSE(list.suspect(node, seconds(0)));
  EXPECT_DOUBLE_EQ(list.score(node, seconds(0)), 0.0);
}

TEST(SuspicionListTest, SuspectsSortedByNodeId) {
  hdfs::SuspicionList list(seconds(30), /*threshold=*/1.0);
  list.report(NodeId{9}, 2.0, seconds(0));
  list.report(NodeId{2}, 2.0, seconds(0));
  list.report(NodeId{6}, 2.0, seconds(0));
  const auto suspects = list.suspects(seconds(0));
  ASSERT_EQ(suspects.size(), 3u);
  EXPECT_EQ(suspects[0], NodeId{2});
  EXPECT_EQ(suspects[1], NodeId{6});
  EXPECT_EQ(suspects[2], NodeId{9});
}

// --- Suspicion list (namenode integration) ----------------------------------

TEST(SuspicionIntegrationTest, SlowReportsDemoteInPlacement) {
  metrics::global_registry().reset();
  Cluster cluster(small_cluster(11));
  const NodeId slow = cluster.datanode_id(kSlowIndex);
  // Enough weighted evidence to cross the default threshold of 2.0.
  cluster.namenode().report_slow_datanode(slow, 2.0);
  cluster.namenode().report_slow_datanode(slow, 2.0);
  ASSERT_TRUE(
      cluster.namenode().suspicion().suspect(slow, cluster.sim().now()));
  EXPECT_EQ(cluster.namenode().slow_node_reports(), 2u);

  // With healthy datanodes available, new pipelines route around the
  // suspect: demotion, not exclusion, but never chosen while clean peers
  // remain.
  const auto file = cluster.namenode().create("/suspect", ClientId{0});
  ASSERT_TRUE(file.ok());
  for (int i = 0; i < 4; ++i) {
    const auto result = cluster.namenode().add_block(
        file.value(), ClientId{0}, cluster.client_node(0), /*excluded=*/{});
    ASSERT_TRUE(result.ok());
    for (const NodeId target : result.value().targets) {
      EXPECT_NE(target, slow) << "suspect chosen for pipeline " << i;
    }
  }
}

// --- Hedged reads ------------------------------------------------------------

TEST(HedgedReadTest, HedgeFiresAndWinsUnderFailSlow) {
  metrics::global_registry().reset();
  cluster::ClusterSpec spec = small_cluster(42);
  spec.hdfs.hedged_reads = true;
  Cluster cluster(spec);
  const auto up = cluster.run_upload("/f", 128 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(up.failed);

  faults::FaultInjector injector(cluster, /*chaos_seed=*/42);
  const SimTime fault_at = cluster.sim().now() + seconds(1);
  injector.fail_slow(kSlowIndex, fault_at, fault_at + seconds(10'000),
                     /*disk_factor=*/8.0, /*nic_factor=*/8.0);
  cluster.sim().run_until(fault_at + milliseconds(1));

  int hedges = 0;
  int wins = 0;
  for (int i = 0; i < 4; ++i) {
    const auto read = cluster.run_download("/f");
    ASSERT_FALSE(read.failed);
    hedges += read.hedged_reads;
    wins += read.hedge_wins;
  }
  EXPECT_GE(hedges, 1);
  EXPECT_GE(wins, 1);
  // The namenode heard about the slow replica from decisive hedge wins.
  EXPECT_GE(cluster.namenode().slow_node_reports(), 1u);
  // Race settlement returned every hedge slot: no budget leak.
  EXPECT_DOUBLE_EQ(hedges_in_flight_gauge(), 0.0);
}

TEST(HedgedReadTest, BudgetZeroDeniesEveryHedge) {
  metrics::global_registry().reset();
  cluster::ClusterSpec spec = small_cluster(42);
  spec.hdfs.hedged_reads = true;
  spec.hdfs.hedge_per_read_cap = 0;
  Cluster cluster(spec);
  const auto up = cluster.run_upload("/f", 128 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(up.failed);
  faults::FaultInjector injector(cluster, /*chaos_seed=*/42);
  const SimTime fault_at = cluster.sim().now() + seconds(1);
  injector.fail_slow(kSlowIndex, fault_at, fault_at + seconds(10'000), 8.0,
                     8.0);
  cluster.sim().run_until(fault_at + milliseconds(1));
  const auto read = cluster.run_download("/f");
  ASSERT_FALSE(read.failed);
  EXPECT_EQ(read.hedged_reads, 0);
  EXPECT_GE(read.hedges_denied, 1);
  EXPECT_DOUBLE_EQ(hedges_in_flight_gauge(), 0.0);
}

TEST(HedgedReadTest, HealthyClusterFilesNoSuspicion) {
  metrics::global_registry().reset();
  cluster::ClusterSpec spec = small_cluster(42);
  spec.hdfs.hedged_reads = true;
  Cluster cluster(spec);
  const auto up = cluster.run_upload("/f", 128 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(up.failed);
  for (int i = 0; i < 3; ++i) {
    const auto read = cluster.run_download("/f");
    ASSERT_FALSE(read.failed);
    // A cold-start hedge may launch before the gap baseline warms up, but
    // on a healthy cluster no win is decisive: zero suspicion reports.
    EXPECT_EQ(read.hedge_wins, 0);
  }
  EXPECT_EQ(cluster.namenode().slow_node_reports(), 0u);
  EXPECT_DOUBLE_EQ(hedges_in_flight_gauge(), 0.0);
}

// --- Write-pipeline slow-node eviction ---------------------------------------

TEST(SlowNodeEvictionTest, EvictsStragglerAndBeatsUndefended) {
  const auto run = [](bool evict) {
    metrics::global_registry().reset();
    cluster::ClusterSpec spec = small_cluster(42);
    spec.hdfs.slow_node_eviction = evict;
    Cluster cluster(spec);
    faults::FaultInjector injector(cluster, /*chaos_seed=*/42);
    injector.fail_slow(kSlowIndex, seconds(2), seconds(100'000),
                       /*disk_factor=*/8.0, /*nic_factor=*/8.0);
    return cluster.run_upload("/f", 256 * kMiB, Protocol::kHdfs);
  };
  const auto undefended = run(false);
  const auto defended = run(true);
  ASSERT_FALSE(undefended.failed);
  ASSERT_FALSE(defended.failed);
  EXPECT_EQ(undefended.slow_evictions, 0);
  EXPECT_GE(defended.slow_evictions, 1);
  // Eviction pays one pipeline recovery to remove the straggler; the
  // remaining blocks at full speed must amortize that cost.
  EXPECT_LT(to_seconds(defended.elapsed()), to_seconds(undefended.elapsed()));
}

TEST(SlowNodeEvictionTest, CleanRunEvictsNothing) {
  for (const Protocol protocol : {Protocol::kHdfs, Protocol::kSmarth}) {
    metrics::global_registry().reset();
    cluster::ClusterSpec spec = small_cluster(42);
    spec.hdfs.slow_node_eviction = true;
    Cluster cluster(spec);
    const auto stats = cluster.run_upload("/f", 256 * kMiB, protocol);
    ASSERT_FALSE(stats.failed);
    EXPECT_EQ(stats.slow_evictions, 0)
        << cluster::protocol_name(protocol) << " evicted on a healthy run";
    EXPECT_EQ(stats.recoveries, 0);
  }
}

// --- Determinism -------------------------------------------------------------

struct DefenseRun {
  SimDuration upload_elapsed = 0;
  int evictions = 0;
  int recoveries = 0;
  SimDuration read_elapsed = 0;
  int hedges = 0;
  int hedge_wins = 0;
  std::uint64_t slow_reports = 0;
};

DefenseRun run_defended(Protocol protocol, hdfs::DataFidelity fidelity) {
  metrics::global_registry().reset();
  cluster::ClusterSpec spec = small_cluster(42);
  spec.hdfs.fidelity = fidelity;
  spec.hdfs.hedged_reads = true;
  spec.hdfs.slow_node_eviction = true;
  Cluster cluster(spec);
  faults::FaultInjector injector(cluster, /*chaos_seed=*/42);
  injector.fail_slow(kSlowIndex, seconds(2), seconds(100'000), 8.0, 8.0);
  DefenseRun out;
  const auto up = cluster.run_upload("/f", 256 * kMiB, protocol);
  EXPECT_FALSE(up.failed);
  out.upload_elapsed = up.elapsed();
  out.evictions = up.slow_evictions;
  out.recoveries = up.recoveries;
  const auto read = cluster.run_download("/f");
  EXPECT_FALSE(read.failed);
  out.read_elapsed = read.elapsed();
  out.hedges = read.hedged_reads;
  out.hedge_wins = read.hedge_wins;
  out.slow_reports = cluster.namenode().slow_node_reports();
  return out;
}

/// Same seed, same spec -> bit-identical defense timeline, for both
/// protocols at both data-path fidelities. The defenses are driven entirely
/// by simulated clocks and seeded RNG, so any divergence is nondeterminism.
TEST(GrayFailureDeterminismTest, IdenticalTimelinesPerSeed) {
  for (const Protocol protocol : {Protocol::kHdfs, Protocol::kSmarth}) {
    for (const hdfs::DataFidelity fidelity :
         {hdfs::DataFidelity::kPacket, hdfs::DataFidelity::kBlock}) {
      const DefenseRun a = run_defended(protocol, fidelity);
      const DefenseRun b = run_defended(protocol, fidelity);
      const char* label = cluster::protocol_name(protocol);
      EXPECT_EQ(a.upload_elapsed, b.upload_elapsed) << label;
      EXPECT_EQ(a.evictions, b.evictions) << label;
      EXPECT_EQ(a.recoveries, b.recoveries) << label;
      EXPECT_EQ(a.read_elapsed, b.read_elapsed) << label;
      EXPECT_EQ(a.hedges, b.hedges) << label;
      EXPECT_EQ(a.hedge_wins, b.hedge_wins) << label;
      EXPECT_EQ(a.slow_reports, b.slow_reports) << label;
    }
  }
}

}  // namespace
}  // namespace smarth
