// Tests for the flight recorder: per-interval counter deltas, gauge samples
// and windowed histogram quantiles against a hand-driven registry; the ring
// buffer's drop-oldest behavior; deterministic exports; each watchdog monitor
// tripping on a synthetic anomaly series and staying quiet on a clean one;
// and the integration path where a Cluster drives the sampler on simulated
// time (including "disabled recorder schedules nothing").
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/metrics_registry.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;
using metrics::FlightRecorder;
using metrics::FlightRecorderConfig;
using metrics::FlightRun;
using metrics::SeriesKind;
using metrics::SeriesSpec;
using metrics::WatchdogSpec;

/// A small hand-driven telemetry set: one counter delta ("progress"), one
/// gauge ("depth"), one windowed p50 over "lat_ns".
FlightRecorderConfig tiny_config() {
  FlightRecorderConfig config;
  config.series = {
      {"progress", SeriesKind::kCounterDelta, "test.progress"},
      {"depth", SeriesKind::kGauge, "test.depth"},
      {"lat_p50", SeriesKind::kHistogramQuantile, "test.lat_ns", 0.50},
  };
  config.watchdogs.clear();
  return config;
}

TEST(FlightRecorder, CounterDeltasGaugesAndWindowedQuantiles) {
  metrics::Registry& reg = metrics::global_registry();
  reg.reset();
  FlightRecorder rec(tiny_config());
  rec.begin_run("RUN", 7);

  reg.counter("test.progress").add(10);
  reg.gauge("test.depth").set(3.0);
  for (int i = 0; i < 100; ++i) reg.histogram("test.lat_ns").observe(1.0e6);
  rec.sample(seconds(1));

  reg.counter("test.progress").add(5);
  reg.gauge("test.depth").set(1.5);
  // A fresh window: later observations must not be averaged with the first
  // interval's.
  for (int i = 0; i < 100; ++i) reg.histogram("test.lat_ns").observe(8.0e6);
  rec.sample(seconds(2));

  // An empty window reports 0, not the previous interval's quantile.
  rec.sample(seconds(3));
  rec.finish_run(seconds(3));

  // The contract: each interval's quantile equals the quantile of a
  // histogram holding only that interval's observations.
  metrics::Registry ref;
  auto& w1 = ref.histogram("w1");
  for (int i = 0; i < 100; ++i) w1.observe(1.0e6);
  auto& w2 = ref.histogram("w2");
  for (int i = 0; i < 100; ++i) w2.observe(8.0e6);

  ASSERT_EQ(rec.runs().size(), 1u);
  const FlightRun& run = rec.runs()[0];
  ASSERT_EQ(run.samples.size(), 3u);
  EXPECT_EQ(run.samples[0].at, seconds(1));
  EXPECT_DOUBLE_EQ(run.samples[0].values[0], 10.0);
  EXPECT_DOUBLE_EQ(run.samples[0].values[1], 3.0);
  EXPECT_DOUBLE_EQ(run.samples[0].values[2], w1.quantile(0.50));
  EXPECT_DOUBLE_EQ(run.samples[1].values[0], 5.0);
  EXPECT_DOUBLE_EQ(run.samples[1].values[1], 1.5);
  EXPECT_DOUBLE_EQ(run.samples[1].values[2], w2.quantile(0.50));
  EXPECT_NE(run.samples[1].values[2], run.samples[0].values[2]);
  EXPECT_DOUBLE_EQ(run.samples[2].values[0], 0.0);
  EXPECT_DOUBLE_EQ(run.samples[2].values[2], 0.0);
  EXPECT_TRUE(run.finished);
  EXPECT_EQ(rec.total_firings(), 0u);
}

TEST(FlightRecorder, MissingMetricsSampleAsZeroAndAppearLater) {
  // Registry entries are created lazily by the instrumented code; a column
  // whose metric does not exist yet must read 0, then pick the metric up
  // mid-run without a spurious first delta.
  metrics::global_registry().reset();
  FlightRecorder rec(tiny_config());
  rec.begin_run("RUN", 1);
  rec.sample(seconds(1));
  metrics::global_registry().counter("test.progress").add(4);
  rec.sample(seconds(2));
  const FlightRun& run = rec.runs()[0];
  EXPECT_DOUBLE_EQ(run.samples[0].values[0], 0.0);
  EXPECT_DOUBLE_EQ(run.samples[1].values[0], 4.0);
}

TEST(FlightRecorder, RingDropsOldestAndCountsDrops) {
  metrics::global_registry().reset();
  FlightRecorderConfig config = tiny_config();
  config.ring_capacity = 4;
  FlightRecorder rec(config);
  rec.begin_run("RUN", 1);
  for (int i = 1; i <= 10; ++i) {
    metrics::global_registry().gauge("test.depth").set(i);
    rec.sample(seconds(i));
  }
  const FlightRun& run = rec.runs()[0];
  EXPECT_EQ(run.samples.size(), 4u);
  EXPECT_EQ(run.samples_taken, 10u);
  EXPECT_EQ(run.dropped, 6u);
  EXPECT_EQ(run.samples.front().at, seconds(7));  // oldest surviving
  EXPECT_DOUBLE_EQ(run.samples.back().values[1], 10.0);
}

TEST(FlightRecorder, ExportsAreDeterministicAndWellShaped) {
  auto record_once = [](FlightRecorder& rec) {
    metrics::Registry& reg = metrics::global_registry();
    reg.reset();
    rec.begin_run("HDFS", 42);
    reg.counter("test.progress").add(3);
    reg.gauge("test.depth").set(0.125);
    rec.sample(seconds(1));
    rec.finish_run(seconds(1));
  };
  FlightRecorder a(tiny_config());
  FlightRecorder b(tiny_config());
  record_once(a);
  record_once(b);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());

  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"sample_interval_ns\":1000000000"),
            std::string::npos);
  EXPECT_NE(json.find("\"columns\":[\"t_ns\",\"progress\",\"depth\","
                      "\"lat_p50\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"samples\":[[1000000000,3,0.125,0]]"),
            std::string::npos);
  // The sweep driver rebuilds to_json() from header + run fragments; the
  // pieces must compose into the same document.
  EXPECT_EQ("{" + a.header_json() + ",\"runs\":[\n" + a.run_json(0) +
                "\n]}\n",
            json);
  const std::string csv = a.to_csv();
  EXPECT_NE(csv.find("run,seed,t_ns,progress,depth,lat_p50"),
            std::string::npos);
  EXPECT_NE(csv.find("HDFS,42,1000000000,3,0.125,0"), std::string::npos);
}

TEST(FlightRecorder, StallWatchdogTripsOnlyWhenPendingAndNoProgress) {
  metrics::Registry& reg = metrics::global_registry();
  reg.reset();
  FlightRecorderConfig config = tiny_config();
  config.watchdogs = {{"stall", WatchdogSpec::Kind::kStall, "progress",
                       "depth", 0.0, 3}};
  FlightRecorder rec(config);
  rec.begin_run("RUN", 1);

  // Progress flowing: no firing no matter how long.
  reg.gauge("test.depth").set(2.0);
  for (int i = 1; i <= 6; ++i) {
    reg.counter("test.progress").add(1);
    rec.sample(seconds(i));
  }
  EXPECT_EQ(rec.total_firings(), 0u);

  // Zero progress but nothing pending either (depth 0): still quiet.
  reg.gauge("test.depth").set(0.0);
  for (int i = 7; i <= 12; ++i) rec.sample(seconds(i));
  EXPECT_EQ(rec.total_firings(), 0u);

  // Pending work and a flat progress counter: fires at the 3rd stalled tick,
  // and latches (one firing per run, not one per subsequent tick).
  reg.gauge("test.depth").set(2.0);
  rec.sample(seconds(13));
  rec.sample(seconds(14));
  EXPECT_EQ(rec.total_firings(), 0u);
  rec.sample(seconds(15));
  EXPECT_EQ(rec.firings_of("stall"), 1u);
  rec.sample(seconds(16));
  rec.finish_run(seconds(16));
  EXPECT_EQ(rec.total_firings(), 1u);

  const FlightRun& run = rec.runs()[0];
  ASSERT_EQ(run.firings.size(), 1u);
  EXPECT_EQ(run.firings[0].monitor, "stall");
  EXPECT_EQ(run.firings[0].at, seconds(15));
  EXPECT_FALSE(run.firings[0].tail.empty());
  EXPECT_NE(run.firings[0].registry_json.find("\"gauges\""),
            std::string::npos);
}

TEST(FlightRecorder, StallStreakResetsWhenProgressResumes) {
  metrics::Registry& reg = metrics::global_registry();
  reg.reset();
  FlightRecorderConfig config = tiny_config();
  config.watchdogs = {{"stall", WatchdogSpec::Kind::kStall, "progress",
                       "depth", 0.0, 3}};
  FlightRecorder rec(config);
  rec.begin_run("RUN", 1);
  reg.gauge("test.depth").set(1.0);
  // Two stalled ticks, one with progress, two stalled again: never 3 in a
  // row, never fires.
  rec.sample(seconds(1));
  rec.sample(seconds(2));
  reg.counter("test.progress").add(1);
  rec.sample(seconds(3));
  rec.sample(seconds(4));
  rec.sample(seconds(5));
  EXPECT_EQ(rec.total_firings(), 0u);
  rec.sample(seconds(6));  // third consecutive stalled tick
  EXPECT_EQ(rec.total_firings(), 1u);
}

TEST(FlightRecorder, RunawayWatchdogNeedsSustainedDepth) {
  metrics::Registry& reg = metrics::global_registry();
  reg.reset();
  FlightRecorderConfig config = tiny_config();
  config.watchdogs = {{"runaway", WatchdogSpec::Kind::kRunaway, "depth", "",
                       100.0, 2}};
  FlightRecorder rec(config);
  rec.begin_run("RUN", 1);
  // A one-tick spike is a burst, not a runaway.
  reg.gauge("test.depth").set(500.0);
  rec.sample(seconds(1));
  reg.gauge("test.depth").set(3.0);
  rec.sample(seconds(2));
  EXPECT_EQ(rec.total_firings(), 0u);
  // Two consecutive ticks past the threshold fire (and latch).
  reg.gauge("test.depth").set(150.0);
  rec.sample(seconds(3));
  rec.sample(seconds(4));
  EXPECT_EQ(rec.firings_of("runaway"), 1u);
  rec.sample(seconds(5));
  EXPECT_EQ(rec.total_firings(), 1u);
  ASSERT_EQ(rec.runs()[0].firings.size(), 1u);
  EXPECT_NE(rec.runs()[0].firings[0].reason.find("150"), std::string::npos);
}

TEST(FlightRecorder, QuiescenceWatchdogReadsRegistryAtFinish) {
  metrics::Registry& reg = metrics::global_registry();
  reg.reset();
  FlightRecorderConfig config = tiny_config();
  config.watchdogs = {{"stuck", WatchdogSpec::Kind::kStuckAtQuiescence,
                       "test.leaked", "", 0.0, 1}};
  {
    FlightRecorder rec(config);
    rec.begin_run("CLEAN", 1);
    rec.sample(seconds(1));
    rec.finish_run(seconds(1));  // gauge absent: nothing leaked
    EXPECT_EQ(rec.total_firings(), 0u);
  }
  {
    FlightRecorder rec(config);
    rec.begin_run("CLEAN0", 1);
    reg.gauge("test.leaked").set(0.0);
    rec.sample(seconds(1));
    rec.finish_run(seconds(1));  // gauge zero: quiesced
    EXPECT_EQ(rec.total_firings(), 0u);
  }
  {
    FlightRecorder rec(config);
    rec.begin_run("LEAKY", 1);
    reg.gauge("test.leaked").set(2.0);
    rec.sample(seconds(1));
    rec.finish_run(seconds(1));
    EXPECT_EQ(rec.firings_of("stuck"), 1u);
    rec.finish_run(seconds(1));  // idempotent: no double fire
    EXPECT_EQ(rec.total_firings(), 1u);
  }
}

TEST(FlightRecorder, WatchdogDumpCarriesPendingSummary) {
  metrics::Registry& reg = metrics::global_registry();
  reg.reset();
  FlightRecorderConfig config = tiny_config();
  config.watchdogs = {{"runaway", WatchdogSpec::Kind::kRunaway, "depth", "",
                       1.0, 1}};
  FlightRecorder rec(config);
  rec.set_pending_summary_provider(
      [] { return std::string("upload.packet: 12"); });
  rec.begin_run("RUN", 1);
  reg.gauge("test.depth").set(5.0);
  rec.sample(seconds(1));
  ASSERT_EQ(rec.total_firings(), 1u);
  EXPECT_EQ(rec.runs()[0].firings[0].pending_summary, "upload.packet: 12");
  // Dumps land in the JSON export, tail samples and all.
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"watchdogs\":[{\"monitor\":\"runaway\""),
            std::string::npos);
  EXPECT_NE(json.find("upload.packet: 12"), std::string::npos);
}

TEST(FlightRecorder, SecondBeginRunSealsAndResetsBaselines) {
  metrics::Registry& reg = metrics::global_registry();
  reg.reset();
  FlightRecorder rec(tiny_config());
  rec.begin_run("A", 1);
  reg.counter("test.progress").add(100);
  rec.sample(seconds(1));
  // No finish_run: begin_run must seal A anyway (without quiescence checks)
  // and rebase the counter baselines so B's first delta is not -100 or +100.
  rec.begin_run("B", 2);
  rec.sample(seconds(1));
  ASSERT_EQ(rec.runs().size(), 2u);
  EXPECT_TRUE(rec.runs()[0].finished);
  EXPECT_DOUBLE_EQ(rec.runs()[1].samples[0].values[0], 0.0);
}

TEST(FlightRecorder, DefaultConfigClusterIntegration) {
  // End to end on a real world: the cluster attaches the sampler, goodput
  // and liveness columns move, no default watchdog fires on a clean upload.
  metrics::global_registry().reset();
  FlightRecorderConfig config;  // default series + watchdogs
  config.sample_interval = milliseconds(100);  // the upload lasts ~1 s
  FlightRecorder rec(config);
  metrics::ScopedFlightInstall install(&rec);
  rec.begin_run("SMARTH", 42);
  cluster::ClusterSpec spec = cluster::small_cluster(42);
  spec.hdfs.block_size = 4 * kMiB;
  Cluster cluster(spec);
  const auto stats =
      cluster.run_upload("/data/a.bin", 16 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  rec.finish_run(cluster.sim().now());

  ASSERT_EQ(rec.runs().size(), 1u);
  const FlightRun& run = rec.runs()[0];
  ASSERT_GT(run.samples.size(), 1u);
  const std::vector<SeriesSpec>& series = rec.config().series;
  std::size_t bytes_col = 0, live_col = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i].column == "client.bytes_acked") bytes_col = i;
    if (series[i].column == "nn.live_datanodes") live_col = i;
  }
  double acked = 0.0;
  for (const metrics::FlightSample& s : run.samples) {
    acked += s.values[bytes_col];
    EXPECT_DOUBLE_EQ(s.values[live_col], 9.0);  // small cluster: 9 datanodes
  }
  EXPECT_GT(acked, 0.0);
  // Clean completion: no stall, no runaway, nothing stuck past quiescence.
  EXPECT_EQ(rec.total_firings(), 0u);
}

TEST(FlightRecorder, DisabledRecorderSchedulesNothing) {
  ASSERT_FALSE(metrics::flight_active());
  metrics::global_registry().reset();
  cluster::ClusterSpec spec = cluster::small_cluster(42);
  spec.hdfs.block_size = 4 * kMiB;
  Cluster cluster(spec);
  const auto stats =
      cluster.run_upload("/data/a.bin", 8 * kMiB, Protocol::kSmarth);
  EXPECT_FALSE(stats.failed);
  // Nothing was installed mid-run and nothing sampled: there is no recorder
  // to hold samples, and the cluster never created a sampler task (checked
  // indirectly: a second identical run with a recorder takes samples).
  FlightRecorder rec;
  metrics::ScopedFlightInstall install(&rec);
  rec.begin_run("SMARTH", 42);
  metrics::global_registry().reset();
  Cluster cluster2(cluster::small_cluster(42));
  (void)cluster2.run_upload("/data/a.bin", 8 * kMiB, Protocol::kSmarth);
  rec.finish_run(cluster2.sim().now());
  EXPECT_GT(rec.runs()[0].samples_taken, 0u);
}

}  // namespace
}  // namespace smarth
