// Unit tests for the SMARTH optimizers: the client-side speed tracker, the
// local optimization (paper Alg. 2) and the namenode's global optimization
// (paper Alg. 1).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hdfs/namenode.hpp"
#include "net/topology.hpp"
#include "smarth/global_optimizer.hpp"
#include "smarth/local_optimizer.hpp"
#include "smarth/speed_tracker.hpp"

namespace smarth::core {
namespace {

// --- SpeedTracker -------------------------------------------------------------

TEST(SpeedTracker, RecordsAndReports) {
  SpeedTracker tracker;
  EXPECT_FALSE(tracker.has_records());
  tracker.record(NodeId{1}, 64 * kMiB, seconds(2), seconds(2));
  ASSERT_TRUE(tracker.has_records());
  const auto speed = tracker.speed(NodeId{1});
  ASSERT_TRUE(speed.has_value());
  EXPECT_NEAR(speed->bits_per_second(), 64.0 * 1024 * 1024 * 8 / 2, 1.0);
}

TEST(SpeedTracker, LatestRecordWins) {
  SpeedTracker tracker;
  tracker.record(NodeId{1}, mib(10), seconds(1), seconds(1));
  tracker.record(NodeId{1}, mib(10), seconds(10), seconds(11));
  EXPECT_NEAR(tracker.speed(NodeId{1})->mbps(), 10.0 * 1.048576 * 8 / 10, 0.01);
}

TEST(SpeedTracker, DegenerateMeasurementsIgnored) {
  SpeedTracker tracker;
  tracker.record(NodeId{1}, 0, seconds(1), seconds(1));
  tracker.record(NodeId{1}, mib(1), 0, seconds(1));
  EXPECT_FALSE(tracker.has_records());
  EXPECT_EQ(tracker.samples(), 0u);
}

TEST(SpeedTracker, HeartbeatSnapshotHasOneRecordPerNode) {
  SpeedTracker tracker;
  tracker.record(NodeId{1}, mib(1), seconds(1), seconds(1));
  tracker.record(NodeId{2}, mib(1), seconds(1), seconds(1));
  tracker.record(NodeId{1}, mib(2), seconds(1), seconds(2));
  const auto records = tracker.heartbeat_records();
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(tracker.datanode_count(), 2u);
  EXPECT_EQ(tracker.samples(), 3u);
}

// --- Local optimizer (Alg. 2) ---------------------------------------------------

class LocalOptTest : public ::testing::Test {
 protected:
  SpeedTracker tracker_;
  Rng rng_{42};
};

TEST_F(LocalOptTest, SortsByMeasuredSpeedDescending) {
  tracker_.record(NodeId{1}, mib(1), seconds(10), 1);  // slow
  tracker_.record(NodeId{2}, mib(1), seconds(1), 1);   // fast
  tracker_.record(NodeId{3}, mib(1), seconds(5), 1);   // middle
  // threshold 1.0 => never explores, pure sort.
  const auto result =
      local_optimize({NodeId{1}, NodeId{3}, NodeId{2}}, tracker_, rng_, 1.0);
  EXPECT_EQ(result.targets,
            (std::vector<NodeId>{NodeId{2}, NodeId{3}, NodeId{1}}));
  EXPECT_TRUE(result.sorted_changed_order);
  EXPECT_FALSE(result.exploration_swap);
}

TEST_F(LocalOptTest, UnmeasuredNodesSortLast) {
  tracker_.record(NodeId{1}, mib(1), seconds(10), 1);
  const auto result =
      local_optimize({NodeId{9}, NodeId{1}}, tracker_, rng_, 1.0);
  EXPECT_EQ(result.targets, (std::vector<NodeId>{NodeId{1}, NodeId{9}}));
}

TEST_F(LocalOptTest, ExplorationSwapRate) {
  tracker_.record(NodeId{1}, mib(1), seconds(1), 1);
  tracker_.record(NodeId{2}, mib(1), seconds(2), 1);
  tracker_.record(NodeId{3}, mib(1), seconds(3), 1);
  int swaps = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    const auto result = local_optimize({NodeId{1}, NodeId{2}, NodeId{3}},
                                       tracker_, rng_, 0.8);
    if (result.exploration_swap) {
      ++swaps;
      EXPECT_NE(result.targets[0], NodeId{1});  // head was swapped away
      EXPECT_GE(result.swap_index, 1);
      EXPECT_LE(result.swap_index, 2);
    } else {
      EXPECT_EQ(result.targets[0], NodeId{1});
    }
  }
  // Paper: swap probability = 1 - threshold = 0.2.
  EXPECT_NEAR(static_cast<double>(swaps) / trials, 0.2, 0.02);
}

TEST_F(LocalOptTest, SwapPreservesMembership) {
  tracker_.record(NodeId{1}, mib(1), seconds(1), 1);
  for (int i = 0; i < 100; ++i) {
    const std::vector<NodeId> in{NodeId{1}, NodeId{2}, NodeId{3}};
    const auto result = local_optimize(in, tracker_, rng_, 0.5);
    std::multiset<std::int64_t> a, b;
    for (NodeId n : in) a.insert(n.value());
    for (NodeId n : result.targets) b.insert(n.value());
    EXPECT_EQ(a, b);
  }
}

TEST_F(LocalOptTest, SingleTargetUntouched) {
  const auto result = local_optimize({NodeId{7}}, tracker_, rng_, 0.0);
  EXPECT_EQ(result.targets, (std::vector<NodeId>{NodeId{7}}));
  EXPECT_FALSE(result.exploration_swap);
}

// --- Global optimizer (Alg. 1) --------------------------------------------------

class GlobalOptTest : public ::testing::Test {
 protected:
  GlobalOptTest() {
    for (int i = 0; i < 9; ++i) {
      alive_.push_back(topo_.add_host("dn" + std::to_string(i),
                                      i < 5 ? "/rack0" : "/rack1"));
    }
    client_node_ = topo_.add_host("client", "/rack0");
  }

  hdfs::PlacementContext ctx() {
    return hdfs::PlacementContext{topo_, alive_, rng_, &board_};
  }

  hdfs::PlacementRequest request() {
    hdfs::PlacementRequest r;
    r.client = client_;
    r.client_node = client_node_;
    r.replication = 3;
    return r;
  }

  void report(NodeId dn, double mbps) {
    board_.update(client_, {dn, Bandwidth::mbps(mbps), 1});
  }

  net::Topology topo_;
  std::vector<NodeId> alive_;
  Rng rng_{42};
  hdfs::SpeedBoard board_;
  ClientId client_{0};
  NodeId client_node_;
  GlobalOptimizerPolicy policy_;
};

TEST_F(GlobalOptTest, FallsBackWithoutRecords) {
  auto c = ctx();
  const auto targets = policy_.choose_targets(request(), c);
  ASSERT_EQ(targets.size(), 3u);
  EXPECT_EQ(policy_.fallback_placements(), 1u);
  EXPECT_EQ(policy_.optimized_placements(), 0u);
}

TEST_F(GlobalOptTest, FirstNodeDrawnFromTopN) {
  // 9 alive / replication 3 => n = 3. Mark three nodes fast.
  report(alive_[2], 300);
  report(alive_[6], 250);
  report(alive_[8], 200);
  report(alive_[0], 10);
  report(alive_[1], 5);
  for (int trial = 0; trial < 100; ++trial) {
    auto c = ctx();
    const auto targets = policy_.choose_targets(request(), c);
    ASSERT_EQ(targets.size(), 3u);
    const bool head_is_fast = targets[0] == alive_[2] ||
                              targets[0] == alive_[6] ||
                              targets[0] == alive_[8];
    EXPECT_TRUE(head_is_fast) << "head " << targets[0].value();
  }
  EXPECT_EQ(policy_.optimized_placements(), 100u);
}

TEST_F(GlobalOptTest, RackRuleStillHolds) {
  report(alive_[2], 300);
  for (int trial = 0; trial < 50; ++trial) {
    auto c = ctx();
    const auto targets = policy_.choose_targets(request(), c);
    ASSERT_EQ(targets.size(), 3u);
    EXPECT_FALSE(topo_.same_rack(targets[0], targets[1]));
    EXPECT_TRUE(topo_.same_rack(targets[1], targets[2]));
  }
}

TEST_F(GlobalOptTest, ExclusionsForceAlternatives) {
  report(alive_[2], 300);
  hdfs::PlacementRequest r = request();
  r.excluded = {alive_[2]};
  for (int trial = 0; trial < 20; ++trial) {
    auto c = ctx();
    const auto targets = policy_.choose_targets(r, c);
    ASSERT_EQ(targets.size(), 3u);
    for (NodeId t : targets) EXPECT_NE(t, alive_[2]);
  }
}

TEST_F(GlobalOptTest, TopNFillsWithUnmeasuredNodes) {
  report(alive_[4], 100);  // only one measured node, n = 3
  auto c = ctx();
  const auto top = GlobalOptimizerPolicy::top_n_for_client(request(), c, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], alive_[4]);  // measured node first
}

TEST_F(GlobalOptTest, TopNOrdersBySpeed) {
  report(alive_[1], 50);
  report(alive_[3], 150);
  report(alive_[5], 100);
  auto c = ctx();
  const auto top = GlobalOptimizerPolicy::top_n_for_client(request(), c, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], alive_[3]);
  EXPECT_EQ(top[1], alive_[5]);
  EXPECT_EQ(top[2], alive_[1]);
}

TEST_F(GlobalOptTest, DeadFastNodeNotChosen) {
  report(alive_[0], 500);
  // Node 0 has records but is no longer in the alive set.
  std::vector<NodeId> alive_subset(alive_.begin() + 1, alive_.end());
  hdfs::PlacementContext c{topo_, alive_subset, rng_, &board_};
  for (int trial = 0; trial < 20; ++trial) {
    const auto targets = policy_.choose_targets(request(), c);
    for (NodeId t : targets) EXPECT_NE(t, alive_[0]);
  }
}

}  // namespace
}  // namespace smarth::core
