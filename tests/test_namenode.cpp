#include "hdfs/namenode.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace smarth::hdfs {
namespace {

class NamenodeTest : public ::testing::Test {
 protected:
  NamenodeTest() {
    nn_node_ = topo_.add_host("nn", "/rack0");
    for (int i = 0; i < 6; ++i) {
      dns_.push_back(topo_.add_host("dn" + std::to_string(i),
                                    i < 3 ? "/rack0" : "/rack1"));
    }
    client_node_ = topo_.add_host("client", "/rack0");
    nn_ = std::make_unique<Namenode>(sim_, topo_, config_, nn_node_);
    for (NodeId dn : dns_) nn_->register_datanode(dn);
  }

  Result<LocatedBlock> add_block(FileId file) {
    return nn_->add_block(file, client_, client_node_, {});
  }

  sim::Simulation sim_;
  net::Topology topo_;
  HdfsConfig config_;
  NodeId nn_node_, client_node_;
  std::vector<NodeId> dns_;
  ClientId client_{0};
  std::unique_ptr<Namenode> nn_;
};

TEST_F(NamenodeTest, CreateChecksPath) {
  EXPECT_FALSE(nn_->create("", client_).ok());
  EXPECT_FALSE(nn_->create("relative/path", client_).ok());
  EXPECT_TRUE(nn_->create("/ok", client_).ok());
}

TEST_F(NamenodeTest, CreateRejectsDuplicates) {
  const auto file = nn_->create("/a", client_);
  ASSERT_TRUE(file.ok());
  // Same client, file still under construction: treated as a retry of a
  // create() whose response was lost — returns the existing entry.
  const auto retried = nn_->create("/a", client_);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.value(), file.value());
  // A different client is a genuine conflict.
  const auto other = nn_->create("/a", ClientId{1});
  ASSERT_FALSE(other.ok());
  EXPECT_EQ(other.error().code, "file_exists");
  // Once closed, even the original creator cannot re-create the path.
  const auto located = add_block(file.value());
  ASSERT_TRUE(located.ok());
  nn_->block_received(located.value().targets[0], located.value().block, 1);
  ASSERT_TRUE(nn_->complete(file.value(), client_).value());
  const auto closed_dup = nn_->create("/a", client_);
  ASSERT_FALSE(closed_dup.ok());
  EXPECT_EQ(closed_dup.error().code, "file_exists");
}

TEST_F(NamenodeTest, SafeModeBlocksWrites) {
  nn_->set_safe_mode(true);
  EXPECT_EQ(nn_->create("/a", client_).error().code, "safe_mode");
  nn_->set_safe_mode(false);
  const auto file = nn_->create("/a", client_);
  ASSERT_TRUE(file.ok());
  nn_->set_safe_mode(true);
  EXPECT_EQ(add_block(file.value()).error().code, "safe_mode");
}

TEST_F(NamenodeTest, AddBlockAllocatesDistinctTargets) {
  const auto file = nn_->create("/a", client_);
  ASSERT_TRUE(file.ok());
  const auto located = add_block(file.value());
  ASSERT_TRUE(located.ok());
  const auto& targets = located.value().targets;
  ASSERT_EQ(targets.size(), 3u);
  EXPECT_NE(targets[0], targets[1]);
  EXPECT_NE(targets[1], targets[2]);
  EXPECT_NE(targets[0], targets[2]);
}

TEST_F(NamenodeTest, AddBlockRequiresLease) {
  const auto file = nn_->create("/a", client_);
  ASSERT_TRUE(file.ok());
  const auto foreign =
      nn_->add_block(file.value(), ClientId{99}, client_node_, {});
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.error().code, "lease_mismatch");
}

TEST_F(NamenodeTest, AddBlockHonoursExclusions) {
  const auto file = nn_->create("/a", client_);
  ASSERT_TRUE(file.ok());
  // Exclude three nodes; allocation must avoid them.
  std::vector<NodeId> excluded{dns_[0], dns_[1], dns_[2]};
  const auto located =
      nn_->add_block(file.value(), client_, client_node_, excluded);
  ASSERT_TRUE(located.ok());
  for (NodeId t : located.value().targets) {
    for (NodeId e : excluded) EXPECT_NE(t, e);
  }
}

TEST_F(NamenodeTest, AddBlockFailsWhenPoolExhausted) {
  const auto file = nn_->create("/a", client_);
  ASSERT_TRUE(file.ok());
  // Exclude all but two nodes: replication 3 cannot be satisfied.
  std::vector<NodeId> excluded(dns_.begin(), dns_.end() - 2);
  const auto located =
      nn_->add_block(file.value(), client_, client_node_, excluded);
  ASSERT_FALSE(located.ok());
  EXPECT_EQ(located.error().code, "insufficient_datanodes");
}

TEST_F(NamenodeTest, CompleteRequiresReportedBlocks) {
  const auto file = nn_->create("/a", client_);
  ASSERT_TRUE(file.ok());
  const auto located = add_block(file.value());
  ASSERT_TRUE(located.ok());
  // Not reported yet: complete() is retryable-false.
  auto completion = nn_->complete(file.value(), client_);
  ASSERT_TRUE(completion.ok());
  EXPECT_FALSE(completion.value());
  // After one replica reports, completion succeeds.
  nn_->block_received(located.value().targets[0], located.value().block,
                      config_.block_size);
  completion = nn_->complete(file.value(), client_);
  ASSERT_TRUE(completion.ok());
  EXPECT_TRUE(completion.value());
  EXPECT_EQ(nn_->file(file.value())->state, FileState::kClosed);
  // Idempotent.
  EXPECT_TRUE(nn_->complete(file.value(), client_).value());
}

TEST_F(NamenodeTest, AddBlockOnClosedFileFails) {
  const auto file = nn_->create("/a", client_);
  const auto located = add_block(file.value());
  nn_->block_received(located.value().targets[0], located.value().block, 1);
  ASSERT_TRUE(nn_->complete(file.value(), client_).value());
  EXPECT_EQ(add_block(file.value()).error().code, "file_closed");
}

TEST_F(NamenodeTest, HeartbeatLiveness) {
  EXPECT_TRUE(nn_->is_alive(dns_[0]));
  // Advance past the dead interval without heartbeats.
  sim_.run_until(config_.datanode_dead_interval + seconds(1));
  EXPECT_FALSE(nn_->is_alive(dns_[0]));
  nn_->handle_heartbeat(dns_[0]);
  EXPECT_TRUE(nn_->is_alive(dns_[0]));
  EXPECT_EQ(nn_->alive_datanodes().size(), 1u);
}

TEST_F(NamenodeTest, DeadNodesNotPlaced) {
  sim_.run_until(config_.datanode_dead_interval + seconds(1));
  for (int i = 0; i < 3; ++i) nn_->handle_heartbeat(dns_[static_cast<size_t>(i)]);
  const auto file = nn_->create("/a", client_);
  const auto located = add_block(file.value());
  ASSERT_TRUE(located.ok());
  for (NodeId t : located.value().targets) {
    EXPECT_TRUE(nn_->is_alive(t));
  }
}

TEST_F(NamenodeTest, GetAdditionalDatanodesExcludesExisting) {
  const auto file = nn_->create("/a", client_);
  const auto located = add_block(file.value());
  ASSERT_TRUE(located.ok());
  const auto extra = nn_->get_additional_datanodes(
      located.value().block, client_, client_node_, located.value().targets,
      {}, 2);
  ASSERT_TRUE(extra.ok());
  EXPECT_EQ(extra.value().size(), 2u);
  for (NodeId n : extra.value()) {
    for (NodeId t : located.value().targets) EXPECT_NE(n, t);
  }
}

TEST_F(NamenodeTest, UpdateBlockTargets) {
  const auto file = nn_->create("/a", client_);
  const auto located = add_block(file.value());
  std::vector<NodeId> fresh{dns_[3], dns_[4], dns_[5]};
  ASSERT_TRUE(nn_->update_block_targets(located.value().block, fresh).ok());
  EXPECT_EQ(nn_->block(located.value().block)->expected_targets, fresh);
  EXPECT_FALSE(nn_->update_block_targets(BlockId{999}, fresh).ok());
}

TEST_F(NamenodeTest, SpeedBoardStoresLatestPerDatanode) {
  SpeedRecord r1{dns_[0], Bandwidth::mbps(100), 10};
  SpeedRecord r2{dns_[0], Bandwidth::mbps(50), 20};
  nn_->report_client_speeds(client_, {r1});
  nn_->report_client_speeds(client_, {r2});
  const auto speed = nn_->speed_board().speed(client_, dns_[0]);
  ASSERT_TRUE(speed.has_value());
  EXPECT_DOUBLE_EQ(speed->mbps(), 50.0);  // newer record wins
  // Stale record does not overwrite a newer one.
  nn_->report_client_speeds(client_, {r1});
  EXPECT_DOUBLE_EQ(nn_->speed_board().speed(client_, dns_[0])->mbps(), 50.0);
}

TEST_F(NamenodeTest, SpeedBoardPerClientIsolation) {
  nn_->report_client_speeds(client_, {{dns_[0], Bandwidth::mbps(10), 1}});
  EXPECT_TRUE(nn_->speed_board().has_records(client_));
  EXPECT_FALSE(nn_->speed_board().has_records(ClientId{5}));
  EXPECT_FALSE(nn_->speed_board().speed(ClientId{5}, dns_[0]).has_value());
}

TEST_F(NamenodeTest, BlockReceivedForUnknownBlockIsIgnored) {
  nn_->block_received(dns_[0], BlockId{777}, 1);  // must not throw
  EXPECT_EQ(nn_->block_count(), 0u);
}

TEST_F(NamenodeTest, ReregistrationIsIdempotent) {
  const auto file = nn_->create("/a", client_);
  const auto located = add_block(file.value());
  ASSERT_TRUE(located.ok());
  const BlockId block = located.value().block;
  for (NodeId t : located.value().targets) {
    nn_->block_received(t, block, config_.block_size);
  }
  ASSERT_EQ(nn_->block(block)->reported.size(), 3u);
  const std::size_t registered = nn_->registered_datanode_count();

  // Re-registering a known datanode must not duplicate the membership entry;
  // it drops that node's (now stale) replica claims and restarts its
  // heartbeat clock. Doing it twice is the same as doing it once.
  const NodeId dn = located.value().targets[0];
  nn_->register_datanode(dn);
  nn_->register_datanode(dn);
  EXPECT_EQ(nn_->registered_datanode_count(), registered);
  EXPECT_EQ(nn_->reregistrations(), 2u);
  EXPECT_TRUE(nn_->is_alive(dn));
  EXPECT_EQ(nn_->block(block)->reported.count(dn), 0u);
  // The other replicas' claims are untouched.
  EXPECT_EQ(nn_->block(block)->reported.size(), 2u);
  // The follow-up block report re-asserts the replica.
  nn_->block_received(dn, block, config_.block_size);
  EXPECT_EQ(nn_->block(block)->reported.size(), 3u);
}

}  // namespace
}  // namespace smarth::hdfs
