// End-to-end tests of the baseline HDFS write protocol on a full simulated
// cluster: create -> addBlock -> pipeline -> packets -> ACKs -> complete,
// including replica placement and durability checks.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "hdfs/namenode.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

cluster::ClusterSpec small_spec(std::uint64_t seed = 42) {
  // A scaled-down small-instance cluster for fast tests: 64 MiB blocks would
  // make tiny uploads single-block, so shrink blocks to get multi-block
  // behaviour at small sizes.
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 4 * kMiB;
  return spec;
}

TEST(UploadHdfs, SingleBlockUploadCompletes) {
  Cluster cluster(small_spec());
  const auto stats =
      cluster.run_upload("/data/a.bin", 2 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  EXPECT_EQ(stats.blocks, 1);
  EXPECT_EQ(stats.pipelines_created, 1);
  EXPECT_GT(stats.elapsed(), 0);
}

TEST(UploadHdfs, MultiBlockUploadCompletes) {
  Cluster cluster(small_spec());
  const auto stats =
      cluster.run_upload("/data/a.bin", 10 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  EXPECT_EQ(stats.blocks, 3);  // 4 + 4 + 2 MiB
  EXPECT_EQ(stats.pipelines_created, 3);
  // Baseline is strictly one pipeline at a time.
  EXPECT_EQ(stats.max_concurrent_pipelines, 1);
}

TEST(UploadHdfs, FileIsFullyReplicated) {
  Cluster cluster(small_spec());
  const auto stats =
      cluster.run_upload("/data/a.bin", 9 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(stats.failed);
  // Let trailing blockReceived notifications drain.
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
  EXPECT_TRUE(cluster.file_fully_replicated("/data/a.bin"));
  EXPECT_EQ(cluster.total_finalized_replica_bytes(),
            3 * 9 * kMiB);  // replication factor 3
}

TEST(UploadHdfs, NamenodeNamespaceReflectsUpload) {
  Cluster cluster(small_spec());
  const auto stats =
      cluster.run_upload("/data/a.bin", 6 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(stats.failed);
  const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/data/a.bin");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, hdfs::FileState::kClosed);
  EXPECT_EQ(entry->blocks.size(), 2u);
}

TEST(UploadHdfs, DuplicateCreateFails) {
  Cluster cluster(small_spec());
  const auto first =
      cluster.run_upload("/data/a.bin", kMiB, Protocol::kHdfs);
  ASSERT_FALSE(first.failed);
  const auto second =
      cluster.run_upload("/data/a.bin", kMiB, Protocol::kHdfs);
  EXPECT_TRUE(second.failed);
  EXPECT_NE(second.failure_reason.find("file_exists"), std::string::npos);
}

TEST(UploadHdfs, RackAwarePlacement) {
  Cluster cluster(small_spec());
  const auto stats =
      cluster.run_upload("/data/a.bin", 8 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(stats.failed);
  const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/data/a.bin");
  ASSERT_NE(entry, nullptr);
  const auto& topo = cluster.network().topology();
  for (BlockId block : entry->blocks) {
    const hdfs::BlockRecord* record = cluster.namenode().block(block);
    ASSERT_NE(record, nullptr);
    ASSERT_EQ(record->expected_targets.size(), 3u);
    const auto& t = record->expected_targets;
    // Replica 2 on a different rack than replica 1; replica 3 beside 2.
    EXPECT_FALSE(topo.same_rack(t[0], t[1]));
    EXPECT_TRUE(topo.same_rack(t[1], t[2]));
    // All distinct.
    EXPECT_NE(t[0], t[1]);
    EXPECT_NE(t[1], t[2]);
    EXPECT_NE(t[0], t[2]);
  }
}

TEST(UploadHdfs, ThroughputBoundedByNic) {
  Cluster cluster(small_spec());
  const auto stats =
      cluster.run_upload("/data/a.bin", 32 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(stats.failed);
  // Cannot beat the client NIC (216 Mbps for small instances).
  EXPECT_LT(stats.throughput().mbps(), 216.0);
  EXPECT_GT(stats.throughput().mbps(), 20.0);
}

TEST(UploadHdfs, CrossRackThrottleSlowsUpload) {
  cluster::ClusterSpec spec = small_spec();
  Cluster fast(spec);
  const auto fast_stats =
      fast.run_upload("/data/a.bin", 16 * kMiB, Protocol::kHdfs);

  Cluster slow(spec);
  slow.throttle_cross_rack(Bandwidth::mbps(20));
  const auto slow_stats =
      slow.run_upload("/data/a.bin", 16 * kMiB, Protocol::kHdfs);

  ASSERT_FALSE(fast_stats.failed);
  ASSERT_FALSE(slow_stats.failed);
  // The pipeline always crosses racks once, so the throttle gates it.
  EXPECT_GT(slow_stats.elapsed(), 2 * fast_stats.elapsed());
}

TEST(UploadHdfs, DeterministicAcrossRuns) {
  Cluster a(small_spec(7));
  Cluster b(small_spec(7));
  const auto sa = a.run_upload("/data/a.bin", 8 * kMiB, Protocol::kHdfs);
  const auto sb = b.run_upload("/data/a.bin", 8 * kMiB, Protocol::kHdfs);
  EXPECT_EQ(sa.elapsed(), sb.elapsed());
  EXPECT_EQ(a.sim().events_executed(), b.sim().events_executed());
}

TEST(UploadHdfs, SafeModeRejectsCreate) {
  Cluster cluster(small_spec());
  cluster.namenode().set_safe_mode(true);
  const auto stats = cluster.run_upload("/data/a.bin", kMiB, Protocol::kHdfs);
  EXPECT_TRUE(stats.failed);
  EXPECT_NE(stats.failure_reason.find("safe_mode"), std::string::npos);
}

TEST(UploadHdfs, PartialLastPacketAndBlock) {
  Cluster cluster(small_spec());
  // 4 MiB blocks, 64 KiB packets: 5 MiB + 100 bytes -> 2 blocks, the last
  // block holding 1 MiB + 100 B with a 100-byte final packet.
  const Bytes size = 5 * kMiB + 100;
  const auto stats = cluster.run_upload("/data/a.bin", size, Protocol::kHdfs);
  ASSERT_FALSE(stats.failed);
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
  EXPECT_TRUE(cluster.file_fully_replicated("/data/a.bin"));
  EXPECT_EQ(cluster.total_finalized_replica_bytes(), 3 * size);
}

}  // namespace
}  // namespace smarth
