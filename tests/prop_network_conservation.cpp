// Conservation and accounting properties of the network/storage substrate
// under randomized traffic: every byte sent is eventually received exactly
// once, link busy-time never exceeds elapsed time, and after an upload the
// cluster-wide byte ledger (client sent vs datanode received vs disk
// written) is consistent.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "net/cross_traffic.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace smarth {
namespace {

TEST(NetworkConservation, RandomTrafficDeliversEveryMessageOnce) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    sim::Simulation sim(seed);
    net::Network net(sim);
    std::vector<NodeId> nodes;
    for (int i = 0; i < 6; ++i) {
      nodes.push_back(net.add_node("n" + std::to_string(i),
                                   i % 2 ? "/r0" : "/r1",
                                   Bandwidth::mbps(100)));
    }
    net.set_cross_rack_throttle(Bandwidth::mbps(20));
    Rng rng(seed);
    const int messages = 500;
    int delivered = 0;
    Bytes bytes_sent = 0;
    for (int m = 0; m < messages; ++m) {
      const NodeId src = nodes[rng.index(nodes.size())];
      NodeId dst = nodes[rng.index(nodes.size())];
      while (dst == src) dst = nodes[rng.index(nodes.size())];
      const Bytes size = rng.uniform_int(1, 64 * kKiB);
      bytes_sent += size;
      const auto priority = rng.uniform() < 0.3
                                ? net::LinkPriority::kControl
                                : net::LinkPriority::kBulk;
      net.send(src, dst, size, [&delivered] { ++delivered; }, priority,
               static_cast<net::FlowKey>(rng.uniform_int(0, 7)));
    }
    sim.run();
    EXPECT_EQ(delivered, messages) << "seed " << seed;
    EXPECT_EQ(net.messages_delivered(), static_cast<std::uint64_t>(messages));
    // Egress bytes across all nodes equal the bytes handed to send().
    Bytes egress_total = 0;
    for (NodeId n : nodes) egress_total += net.bytes_sent(n);
    EXPECT_EQ(egress_total, bytes_sent);
  }
}

TEST(NetworkConservation, LinkBusyTimeBoundedByElapsed) {
  sim::Simulation sim(9);
  net::Network net(sim);
  const NodeId a = net.add_node("a", "/r0", Bandwidth::mbps(50));
  const NodeId b = net.add_node("b", "/r0", Bandwidth::mbps(50));
  for (int i = 0; i < 100; ++i) net.send(a, b, 64 * kKiB, [] {});
  sim.run();
  EXPECT_LE(net.egress_link(a).busy_time(), sim.now());
  // A saturated sender should be busy nearly the whole run.
  EXPECT_GT(net.egress_link(a).busy_time(), sim.now() * 9 / 10);
}

TEST(NetworkConservation, UploadByteLedgerConsistent) {
  // After a full upload: client egress carries payload + per-packet headers
  // + control traffic; datanode disks hold exactly replication × file bytes.
  cluster::ClusterSpec spec = cluster::small_cluster(5);
  spec.hdfs.block_size = 4 * kMiB;
  cluster::Cluster cluster(spec);
  const Bytes file_size = 12 * kMiB;
  const auto stats =
      cluster.run_upload("/f", file_size, cluster::Protocol::kSmarth);
  ASSERT_FALSE(stats.failed);
  cluster.sim().run_until(cluster.sim().now() + seconds(3));

  // Disk ledger: every replica byte was written exactly once.
  Bytes disk_written = 0;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    disk_written += cluster.datanode(i).disk().bytes_written();
  }
  EXPECT_EQ(disk_written, 3 * file_size);

  // Client egress: at least the payload plus headers, at most +5% control.
  const Bytes client_sent = cluster.network().bytes_sent(cluster.client_node());
  const Bytes payload_with_headers =
      file_size +
      stats.packets * cluster.config().packet_header_wire;
  EXPECT_GE(client_sent, payload_with_headers);
  EXPECT_LE(client_sent, payload_with_headers * 105 / 100);

  // Dropped messages only exist under partitions.
  EXPECT_EQ(cluster.network().messages_dropped(), 0u);
}

TEST(NetworkConservation, ReplicationAmplifiesNetworkBytesCorrectly) {
  // Total datanode ingress ≈ replication × file bytes (each replica crosses
  // the wire once: client->DN1, DN1->DN2, DN2->DN3) plus control traffic.
  cluster::ClusterSpec spec = cluster::small_cluster(6);
  spec.hdfs.block_size = 4 * kMiB;
  cluster::Cluster cluster(spec);
  const Bytes file_size = 8 * kMiB;
  const auto stats =
      cluster.run_upload("/f", file_size, cluster::Protocol::kHdfs);
  ASSERT_FALSE(stats.failed);
  cluster.sim().run_until(cluster.sim().now() + seconds(3));
  Bytes dn_ingress = 0;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    dn_ingress += cluster.network().bytes_received(cluster.datanode_id(i));
  }
  const Bytes data_floor = 3 * file_size;
  EXPECT_GE(dn_ingress, data_floor);
  EXPECT_LE(dn_ingress, data_floor * 108 / 100);  // headers + control
}

TEST(NetworkConservation, CrossTrafficDoesNotLeakIntoLedger) {
  // Background traffic and an upload account separately: disk bytes stay
  // exactly replication × file bytes regardless of cross traffic.
  cluster::ClusterSpec spec = cluster::small_cluster(7);
  spec.hdfs.block_size = 4 * kMiB;
  cluster::Cluster cluster(spec);
  net::CrossTraffic traffic(cluster.network(), cluster.datanode_id(0),
                            cluster.datanode_id(5));
  traffic.start();
  const auto stats =
      cluster.run_upload("/f", 8 * kMiB, cluster::Protocol::kSmarth);
  traffic.stop();
  ASSERT_FALSE(stats.failed);
  cluster.sim().run_until(cluster.sim().now() + seconds(3));
  Bytes disk_written = 0;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    disk_written += cluster.datanode(i).disk().bytes_written();
  }
  EXPECT_EQ(disk_written, 3 * 8 * kMiB);
  EXPECT_GT(traffic.bytes_sent(), 0);
}

}  // namespace
}  // namespace smarth
