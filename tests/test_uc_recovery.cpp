// Unit tests for under-construction block recovery: the namenode's
// commitBlockSynchronization protocol (replica length probe, truncate to the
// minimum durable length for tail blocks, finalize-at-max for earlier
// blocks, zero-durable abandonment) and the create-takeover path a new
// writer uses on a soft-expired file.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hdfs/datanode.hpp"
#include "hdfs/namenode.hpp"
#include "hdfs/transport.hpp"
#include "net/network.hpp"
#include "rpc/rpc_bus.hpp"
#include "sim/simulation.hpp"

namespace smarth::hdfs {
namespace {

class NullAckSink : public AckSink {
 public:
  void deliver_ack(const PipelineAck&) override {}
  void deliver_setup_ack(const SetupAck&) override {}
  void deliver_fnfa(const FnfaMessage&) override {}
};

class UcRecoveryTest : public ::testing::Test {
 protected:
  UcRecoveryTest() : sim_(1), net_(sim_) {
    config_.packet_payload = 64 * kKiB;
    config_.block_size = 4 * config_.packet_payload;  // 4 packets per block
    nn_node_ = net_.add_node("nn", "/r0", Bandwidth::mbps(1000));
    client_node_ = net_.add_node("client", "/r0", Bandwidth::mbps(1000));
    for (int i = 0; i < 3; ++i) {
      dn_nodes_.push_back(net_.add_node("dn" + std::to_string(i), "/r0",
                                        Bandwidth::mbps(1000)));
    }
    SinkResolver resolver;
    resolver.packet_sink = [this](NodeId node) -> PacketSink* {
      return resolve(node);
    };
    resolver.ack_sink = [this](NodeId, PipelineId) -> AckSink* {
      return &client_sink_;
    };
    transport_ = std::make_unique<Transport>(net_, config_, resolver);
    namenode_ = std::make_unique<Namenode>(sim_, net_.topology(), config_,
                                           nn_node_);
    for (NodeId node : dn_nodes_) {
      auto dn = std::make_unique<Datanode>(sim_, *transport_, rpc_,
                                           *namenode_, config_, node);
      dn->set_peer_resolver([this](NodeId peer) { return resolve(peer); });
      dn->start();
      dns_.push_back(std::move(dn));
    }
    // Route recovery commands straight to the primary, as the cluster
    // facade does.
    namenode_->enable_lease_recovery(
        [this](NodeId primary, const UcRecoveryCommand& cmd) {
          Datanode* dn = resolve(primary);
          if (dn == nullptr || dn->crashed()) return false;
          rpc_.notify(namenode_->node_id(), primary,
                      [dn, cmd] { dn->recover_uc_block(cmd); });
          return true;
        });
    settle(milliseconds(100));  // datanode registration heartbeats
  }

  Datanode* resolve(NodeId node) {
    for (std::size_t i = 0; i < dn_nodes_.size(); ++i) {
      if (dn_nodes_[i] == node) return dns_[i].get();
    }
    return nullptr;
  }

  void settle(SimDuration span = seconds(2)) {
    sim_.run_until(sim_.now() + span);
  }

  /// Creates a file and allocates one block, returning its location.
  LocatedBlock allocate_block(FileId file) {
    const auto located =
        namenode_->add_block(file, writer_, client_node_, {});
    EXPECT_TRUE(located.ok());
    return located.value();
  }

  /// Opens a pipeline over `located.targets` and streams `packets` packets
  /// (each 64 KiB). Fewer than 4 leaves the replicas under construction.
  void stream_packets(const LocatedBlock& located, int packets) {
    PipelineSetup setup;
    setup.pipeline = PipelineId{next_pipeline_++};
    setup.block = located.block;
    setup.targets = located.targets;
    setup.client_node = client_node_;
    setup.client = writer_;
    transport_->send_setup(client_node_, setup.targets[0], setup);
    settle(milliseconds(50));
    for (int i = 0; i < packets; ++i) {
      WirePacket packet;
      packet.pipeline = setup.pipeline;
      packet.block = setup.block;
      packet.seq = i;
      packet.payload = config_.packet_payload;
      packet.last_in_block =
          (i + 1) * config_.packet_payload >= config_.block_size;
      transport_->send_packet(client_node_, setup.targets[0], packet);
    }
    settle(milliseconds(200));
  }

  Bytes replica_bytes(NodeId node, BlockId block) {
    const auto replica = resolve(node)->block_store().replica(block);
    return replica.ok() ? replica.value().bytes : 0;
  }

  bool replica_finalized(NodeId node, BlockId block) {
    const auto replica = resolve(node)->block_store().replica(block);
    return replica.ok() &&
           replica.value().state == storage::ReplicaState::kFinalized;
  }

  sim::Simulation sim_;
  net::Network net_;
  HdfsConfig config_;
  rpc::RpcBus rpc_{net_};
  NodeId nn_node_, client_node_;
  std::vector<NodeId> dn_nodes_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<Namenode> namenode_;
  std::vector<std::unique_ptr<Datanode>> dns_;
  NullAckSink client_sink_;
  ClientId writer_{7};
  std::int64_t next_pipeline_ = 1;
};

TEST_F(UcRecoveryTest, TailBlockTruncatesToMinimumDurableLength) {
  const auto file = namenode_->create("/f", writer_);
  ASSERT_TRUE(file.ok());
  const LocatedBlock located = allocate_block(file.value());
  stream_packets(located, 2);  // 128 KiB on every replica, all open

  // One replica only made it to 64 KiB durable (e.g. its disk flushed less
  // before the writer vanished): the shortest *live* prefix bounds what the
  // recovered block may claim.
  ASSERT_TRUE(resolve(located.targets[2])
                  ->commit_replica(located.block, 64 * kKiB)
                  .ok());

  ASSERT_TRUE(namenode_->start_lease_recovery(file.value()).ok());
  settle(seconds(5));

  const FileEntry* entry = namenode_->file_by_path("/f");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, FileState::kClosed);
  EXPECT_EQ(namenode_->uc_blocks_recovered(), 1u);
  EXPECT_EQ(namenode_->bytes_salvaged(), 64 * kKiB);
  EXPECT_EQ(namenode_->orphans_abandoned(), 0u);
  for (NodeId node : located.targets) {
    EXPECT_TRUE(replica_finalized(node, located.block));
    EXPECT_EQ(replica_bytes(node, located.block), 64 * kKiB);
  }
  // The namenode serves the synchronized length to readers.
  const auto locations = namenode_->get_block_locations("/f", client_node_);
  ASSERT_TRUE(locations.ok());
  ASSERT_EQ(locations.value().size(), 1u);
  EXPECT_EQ(locations.value()[0].length, 64 * kKiB);
  EXPECT_EQ(locations.value()[0].targets.size(), 3u);
}

TEST_F(UcRecoveryTest, ZeroDurableTailIsAbandoned) {
  const auto file = namenode_->create("/f", writer_);
  ASSERT_TRUE(file.ok());
  const LocatedBlock located = allocate_block(file.value());
  stream_packets(located, 0);  // pipeline set up, not one byte written

  ASSERT_TRUE(namenode_->start_lease_recovery(file.value()).ok());
  settle(seconds(5));

  const FileEntry* entry = namenode_->file_by_path("/f");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, FileState::kClosed);
  EXPECT_TRUE(entry->blocks.empty());
  EXPECT_EQ(namenode_->uc_blocks_recovered(), 0u);
  EXPECT_EQ(namenode_->bytes_salvaged(), 0u);
  EXPECT_EQ(namenode_->orphans_abandoned(), 1u);
  const auto locations = namenode_->get_block_locations("/f", client_node_);
  ASSERT_TRUE(locations.ok());
  EXPECT_TRUE(locations.value().empty());  // empty file, zero-byte prefix
}

TEST_F(UcRecoveryTest, NonTailBlockFinalizesAtMaxAndDiscardsStragglers) {
  const auto file = namenode_->create("/f", writer_);
  ASSERT_TRUE(file.ok());
  const LocatedBlock first = allocate_block(file.value());
  stream_packets(first, 2);  // 128 KiB open everywhere
  const LocatedBlock second = allocate_block(file.value());
  stream_packets(second, 0);  // tail never received data

  // One straggler replica of the first block stopped at 64 KiB. For a
  // non-tail block the longest replica wins (its writer moved on, so the
  // longest prefix was acknowledged end-to-end under FNFA pacing); shorter
  // stragglers are discarded rather than dragging the length down.
  ASSERT_TRUE(resolve(first.targets[2])
                  ->commit_replica(first.block, 64 * kKiB)
                  .ok());

  ASSERT_TRUE(namenode_->start_lease_recovery(file.value()).ok());
  settle(seconds(5));

  const FileEntry* entry = namenode_->file_by_path("/f");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, FileState::kClosed);
  // The first block survives at 128 KiB on the two long replicas; the
  // straggler is gone. Because the block is short of a full block, the file
  // is truncated after it: the zero-durable tail is abandoned.
  ASSERT_EQ(entry->blocks.size(), 1u);
  EXPECT_EQ(entry->blocks[0], first.block);
  EXPECT_EQ(namenode_->uc_blocks_recovered(), 1u);
  EXPECT_EQ(namenode_->bytes_salvaged(), 128 * kKiB);
  EXPECT_EQ(namenode_->orphans_abandoned(), 1u);
  EXPECT_TRUE(replica_finalized(first.targets[0], first.block));
  EXPECT_TRUE(replica_finalized(first.targets[1], first.block));
  EXPECT_EQ(replica_bytes(first.targets[0], first.block), 128 * kKiB);
  EXPECT_EQ(replica_bytes(first.targets[1], first.block), 128 * kKiB);
  EXPECT_FALSE(
      resolve(first.targets[2])->block_store().has_replica(first.block));
}

TEST_F(UcRecoveryTest, CompleteByDeadWriterAfterRecoveryIsRejected) {
  const auto file = namenode_->create("/f", writer_);
  ASSERT_TRUE(file.ok());
  const LocatedBlock located = allocate_block(file.value());
  stream_packets(located, 2);
  ASSERT_TRUE(namenode_->start_lease_recovery(file.value()).ok());
  settle(seconds(5));
  ASSERT_EQ(namenode_->file_by_path("/f")->state, FileState::kClosed);
  // The original writer limps back and calls complete(): it must learn the
  // file was taken away, not be told its full upload landed.
  const auto completed = namenode_->complete(file.value(), writer_);
  ASSERT_FALSE(completed.ok());
  EXPECT_EQ(completed.error().code, "lease_expired");
}

TEST_F(UcRecoveryTest, CreateTakeoverOnSoftExpiredHolder) {
  const auto file = namenode_->create("/f", writer_);
  ASSERT_TRUE(file.ok());
  const LocatedBlock located = allocate_block(file.value());
  stream_packets(located, 2);

  const ClientId thief{8};
  // Before the soft limit the file is simply busy.
  const auto early = namenode_->create("/f", thief);
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.error().code, "file_exists");

  // Past the soft limit (no renewals from the writer), a create() by a new
  // client forces lease recovery and reports it as retryable.
  settle(config_.lease_soft_limit + seconds(1));
  const auto takeover = namenode_->create("/f", thief);
  ASSERT_FALSE(takeover.ok());
  EXPECT_EQ(takeover.error().code, "recovery_in_progress");

  settle(seconds(5));  // recovery closes the file at its salvaged prefix
  ASSERT_EQ(namenode_->file_by_path("/f")->state, FileState::kClosed);
  EXPECT_EQ(namenode_->lease_expiries(), 1u);

  // The retry without overwrite hits the now-closed file; with overwrite
  // the new writer replaces it.
  EXPECT_EQ(namenode_->create("/f", thief).error().code, "file_exists");
  const auto replaced = namenode_->create("/f", thief, /*overwrite=*/true);
  ASSERT_TRUE(replaced.ok());
  EXPECT_NE(replaced.value(), file.value());
  EXPECT_EQ(namenode_->file_by_path("/f")->state,
            FileState::kUnderConstruction);
}

TEST_F(UcRecoveryTest, LeaseMonitorRecoversUnprompted) {
  const auto file = namenode_->create("/f", writer_);
  ASSERT_TRUE(file.ok());
  const LocatedBlock located = allocate_block(file.value());
  stream_packets(located, 2);

  // Nobody calls start_lease_recovery: the writer just stops renewing. The
  // monitor must notice past the hard limit and close the file on its own.
  settle(config_.lease_hard_limit + config_.lease_monitor_interval +
         seconds(5));
  const FileEntry* entry = namenode_->file_by_path("/f");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, FileState::kClosed);
  EXPECT_EQ(namenode_->lease_expiries(), 1u);
  // All three replicas were open at 128 KiB: the minimum durable length is
  // the full common prefix.
  EXPECT_EQ(namenode_->bytes_salvaged(), 128 * kKiB);
}

}  // namespace
}  // namespace smarth::hdfs
