#include "common/units.hpp"

#include <gtest/gtest.h>

#include "common/ids.hpp"
#include "common/result.hpp"

namespace smarth {
namespace {

TEST(Units, DurationConstructors) {
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_EQ(milliseconds(3), 3'000'000);
  EXPECT_EQ(microseconds(5), 5'000);
  EXPECT_EQ(seconds_f(0.5), 500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(8)), 8.0);
}

TEST(Units, ByteConstructors) {
  EXPECT_EQ(kib(1), 1024);
  EXPECT_EQ(mib(64), 64LL * 1024 * 1024);
  EXPECT_EQ(gib(8), 8LL * 1024 * 1024 * 1024);
}

TEST(Units, BandwidthTransmitTime) {
  const Bandwidth bw = Bandwidth::mbps(100);
  // 64 KiB at 100 Mbps = 65536*8/100e6 s = 5.24288 ms.
  EXPECT_EQ(bw.transmit_time(64 * kKiB), 5'242'880);
  EXPECT_EQ(bw.transmit_time(0), 0);
}

TEST(Units, UnlimitedBandwidth) {
  EXPECT_TRUE(kUnlimitedBandwidth.is_unlimited());
  EXPECT_EQ(kUnlimitedBandwidth.transmit_time(gib(1)), 0);
  // Unlimited compares greater than any finite rate.
  EXPECT_TRUE(Bandwidth::mbps(1000) < kUnlimitedBandwidth);
  EXPECT_FALSE(kUnlimitedBandwidth < Bandwidth::mbps(1000));
}

TEST(Units, BandwidthMinOrdering) {
  const Bandwidth a = Bandwidth::mbps(50);
  const Bandwidth b = Bandwidth::mbps(216);
  EXPECT_TRUE(a < b);
  EXPECT_EQ(min(a, b), a);
  EXPECT_EQ(min(b, a), a);
  EXPECT_EQ(min(a, kUnlimitedBandwidth), a);
}

TEST(Units, MegaBytesPerSecond) {
  const Bandwidth disk = Bandwidth::mega_bytes_per_second(100);
  EXPECT_DOUBLE_EQ(disk.bits_per_second(), 800e6);
  EXPECT_DOUBLE_EQ(disk.bytes_per_second(), 100e6);
}

TEST(Units, ThroughputOf) {
  // 1 GiB in 10 s.
  const Bandwidth t = throughput_of(gib(1), seconds(10));
  EXPECT_NEAR(t.bits_per_second(), 8.0 * 1073741824.0 / 10.0, 1.0);
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_bytes(gib(8)), "8.00 GiB");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bandwidth(Bandwidth::mbps(50)), "50.00 Mbps");
  EXPECT_EQ(format_bandwidth(kUnlimitedBandwidth), "unlimited");
  EXPECT_EQ(format_duration(seconds(2)), "2.000 s");
}

TEST(Ids, TypedIdsAreDistinctAndComparable) {
  const NodeId a{1};
  const NodeId b{2};
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_EQ(a.to_string(), "node-1");
  EXPECT_FALSE(NodeId{}.valid());
  EXPECT_TRUE(a.valid());
}

TEST(Ids, GeneratorIsMonotonic) {
  IdGenerator<BlockId> gen;
  EXPECT_EQ(gen.next().value(), 0);
  EXPECT_EQ(gen.next().value(), 1);
  EXPECT_EQ(gen.issued(), 2);
}

TEST(Result, ValueAndError) {
  Result<int> ok = 7;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);

  Result<int> err = make_error("nope", "does not work");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, "nope");
  EXPECT_THROW(err.value(), std::logic_error);
}

TEST(Result, StatusSemantics) {
  Status ok = Status::ok_status();
  EXPECT_TRUE(ok.ok());
  Status bad = make_error("bad", "broken");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "bad");
  EXPECT_THROW(ok.error(), std::logic_error);
}

}  // namespace
}  // namespace smarth
