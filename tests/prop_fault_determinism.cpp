// Property: the simulation is bit-reproducible even through fault handling.
// For a grid of (protocol, fault kind, seed), two runs with identical
// configuration must agree on elapsed time, event count, recovery count and
// replica layout — the foundation for every debugging and regression claim
// this repository makes.
#include <gtest/gtest.h>

#include <map>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "workload/fault_plan.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

enum class FaultKind { kNone, kCrash, kCorrupt, kPartitionBlip };

struct Params {
  Protocol protocol;
  FaultKind fault;
  std::uint64_t seed;
};

std::string fault_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kPartitionBlip: return "partition";
  }
  return "?";
}

struct Fingerprint {
  SimDuration elapsed = 0;
  std::uint64_t events = 0;
  int recoveries = 0;
  bool failed = false;
  /// block value -> sorted (node, bytes) pairs.
  std::map<std::int64_t, std::map<std::int64_t, Bytes>> replicas;

  bool operator==(const Fingerprint& other) const = default;
};

Fingerprint run_once(const Params& p) {
  cluster::ClusterSpec spec = cluster::small_cluster(p.seed);
  spec.hdfs.block_size = 4 * kMiB;
  spec.hdfs.ack_timeout = seconds(2);
  spec.hdfs.datanode_dead_interval = seconds(8);
  Cluster cluster(spec);
  cluster.throttle_cross_rack(Bandwidth::mbps(60));

  switch (p.fault) {
    case FaultKind::kNone:
      break;
    case FaultKind::kCrash:
      cluster.crash_datanode_at(2, seconds(1));
      break;
    case FaultKind::kCorrupt:
      cluster.datanode(4).inject_checksum_error_on_nth_packet(30);
      break;
    case FaultKind::kPartitionBlip:
      cluster.sim().schedule_at(milliseconds(800), [&cluster] {
        cluster.network().set_rack_partition("/rack0", "/rack1", true);
      });
      cluster.sim().schedule_at(seconds(6), [&cluster] {
        cluster.network().set_rack_partition("/rack0", "/rack1", false);
      });
      break;
  }

  const auto stats = cluster.run_upload("/f", 24 * kMiB, p.protocol);
  cluster.sim().run_until(cluster.sim().now() + seconds(2));

  Fingerprint fp;
  fp.elapsed = stats.elapsed();
  fp.events = cluster.sim().events_executed();
  fp.recoveries = stats.recoveries;
  fp.failed = stats.failed;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    for (const auto& replica :
         cluster.datanode(i).block_store().all_replicas()) {
      fp.replicas[replica.block.value()][static_cast<std::int64_t>(i)] =
          replica.bytes;
    }
  }
  return fp;
}

class FaultDeterminism : public ::testing::TestWithParam<Params> {};

TEST_P(FaultDeterminism, ReplayIsBitIdentical) {
  const Fingerprint a = run_once(GetParam());
  const Fingerprint b = run_once(GetParam());
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.replicas, b.replicas);
}

TEST_P(FaultDeterminism, UploadsSurviveTheFault) {
  const Fingerprint fp = run_once(GetParam());
  EXPECT_FALSE(fp.failed);
}

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  return std::string(info.param.protocol == Protocol::kHdfs ? "hdfs"
                                                            : "smarth") +
         "_" + fault_name(info.param.fault) + "_s" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FaultDeterminism,
    ::testing::Values(
        Params{Protocol::kHdfs, FaultKind::kNone, 21},
        Params{Protocol::kHdfs, FaultKind::kCrash, 22},
        Params{Protocol::kHdfs, FaultKind::kCorrupt, 23},
        Params{Protocol::kHdfs, FaultKind::kPartitionBlip, 24},
        Params{Protocol::kSmarth, FaultKind::kNone, 25},
        Params{Protocol::kSmarth, FaultKind::kCrash, 26},
        Params{Protocol::kSmarth, FaultKind::kCorrupt, 27},
        Params{Protocol::kSmarth, FaultKind::kPartitionBlip, 28}),
    param_name);

}  // namespace
}  // namespace smarth
