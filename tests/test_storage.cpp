#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "storage/block_store.hpp"
#include "storage/disk.hpp"
#include "storage/staging_buffer.hpp"

namespace smarth::storage {
namespace {

// --- DiskDevice -------------------------------------------------------------

TEST(Disk, ServiceTimeIsOverheadPlusBandwidth) {
  sim::Simulation sim;
  DiskDevice disk(sim, "d", Bandwidth::mega_bytes_per_second(100),
                  microseconds(50));
  const SimDuration expected =
      microseconds(50) +
      Bandwidth::mega_bytes_per_second(100).transmit_time(64 * kKiB);
  EXPECT_EQ(disk.service_time(64 * kKiB), expected);
  SimTime done = -1;
  disk.write(64 * kKiB, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, expected);
}

TEST(Disk, FifoOrdering) {
  sim::Simulation sim;
  DiskDevice disk(sim, "d", Bandwidth::mega_bytes_per_second(10),
                  microseconds(10));
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    disk.write(kKiB, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(disk.ops_completed(), 4u);
  EXPECT_EQ(disk.bytes_written(), 4 * kKiB);
}

TEST(Disk, QueueDepthVisible) {
  sim::Simulation sim;
  DiskDevice disk(sim, "d", Bandwidth::mega_bytes_per_second(1),
                  milliseconds(1));
  disk.write(kMiB, [] {});
  disk.write(kMiB, [] {});
  disk.write(kMiB, [] {});
  EXPECT_TRUE(disk.busy());
  EXPECT_EQ(disk.queue_depth(), 2u);  // one in service
  sim.run();
  EXPECT_EQ(disk.queue_depth(), 0u);
  EXPECT_FALSE(disk.busy());
}

TEST(Disk, BusyTimeAccumulates) {
  sim::Simulation sim;
  DiskDevice disk(sim, "d", Bandwidth::mega_bytes_per_second(100),
                  microseconds(0));
  disk.write(kMiB, [] {});
  sim.run();
  EXPECT_EQ(disk.busy_time(),
            Bandwidth::mega_bytes_per_second(100).transmit_time(kMiB));
}

TEST(Disk, WriteFromCompletionCallback) {
  sim::Simulation sim;
  DiskDevice disk(sim, "d", Bandwidth::mega_bytes_per_second(100),
                  microseconds(10));
  int writes = 0;
  disk.write(kKiB, [&] {
    ++writes;
    disk.write(kKiB, [&] { ++writes; });
  });
  sim.run();
  EXPECT_EQ(writes, 2);
}

// --- BlockStore ---------------------------------------------------------------

TEST(BlockStore, CreateAppendFinalize) {
  BlockStore store;
  const BlockId b{1};
  ASSERT_TRUE(store.create_replica(b).ok());
  ASSERT_TRUE(store.append(b, 100).ok());
  ASSERT_TRUE(store.append(b, 28).ok());
  const auto info = store.replica(b);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().bytes, 128);
  EXPECT_EQ(info.value().state, ReplicaState::kBeingWritten);
  const auto len = store.finalize(b);
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(len.value(), 128);
  EXPECT_EQ(store.finalized_count(), 1u);
}

TEST(BlockStore, DuplicateCreateFails) {
  BlockStore store;
  const BlockId b{1};
  ASSERT_TRUE(store.create_replica(b).ok());
  EXPECT_FALSE(store.create_replica(b).ok());
}

TEST(BlockStore, AppendToFinalizedFails) {
  BlockStore store;
  const BlockId b{1};
  ASSERT_TRUE(store.create_replica(b).ok());
  ASSERT_TRUE(store.finalize(b).ok());
  EXPECT_FALSE(store.append(b, 10).ok());
}

TEST(BlockStore, AppendToMissingFails) {
  BlockStore store;
  EXPECT_FALSE(store.append(BlockId{9}, 10).ok());
  EXPECT_FALSE(store.finalize(BlockId{9}).ok());
}

TEST(BlockStore, TruncateToSyncPoint) {
  BlockStore store;
  const BlockId b{1};
  ASSERT_TRUE(store.create_replica(b).ok());
  ASSERT_TRUE(store.append(b, 1000).ok());
  ASSERT_TRUE(store.truncate(b, 600).ok());
  EXPECT_EQ(store.replica(b).value().bytes, 600);
  EXPECT_FALSE(store.truncate(b, 700).ok());  // cannot extend
  EXPECT_FALSE(store.truncate(b, -1).ok());
}

TEST(BlockStore, TruncateReopensFinalizedReplica) {
  BlockStore store;
  const BlockId b{1};
  ASSERT_TRUE(store.create_replica(b).ok());
  ASSERT_TRUE(store.append(b, 1000).ok());
  ASSERT_TRUE(store.finalize(b).ok());
  ASSERT_TRUE(store.truncate(b, 500).ok());
  EXPECT_EQ(store.replica(b).value().state, ReplicaState::kBeingWritten);
  ASSERT_TRUE(store.append(b, 500).ok());  // writable again
}

TEST(BlockStore, RemoveReplica) {
  BlockStore store;
  const BlockId b{1};
  ASSERT_TRUE(store.create_replica(b).ok());
  ASSERT_TRUE(store.remove(b).ok());
  EXPECT_FALSE(store.has_replica(b));
  EXPECT_FALSE(store.remove(b).ok());
}

TEST(BlockStore, Totals) {
  BlockStore store;
  ASSERT_TRUE(store.create_replica(BlockId{1}).ok());
  ASSERT_TRUE(store.create_replica(BlockId{2}).ok());
  ASSERT_TRUE(store.append(BlockId{1}, 100).ok());
  ASSERT_TRUE(store.append(BlockId{2}, 50).ok());
  EXPECT_EQ(store.total_bytes(), 150);
  EXPECT_EQ(store.replica_count(), 2u);
  EXPECT_EQ(store.all_replicas().size(), 2u);
}

// --- StagingBuffer -------------------------------------------------------------

TEST(StagingBuffer, ReserveRelease) {
  StagingBuffer buf(1000);
  EXPECT_TRUE(buf.reserve(600));
  EXPECT_EQ(buf.used(), 600);
  EXPECT_EQ(buf.free(), 400);
  buf.release(200);
  EXPECT_EQ(buf.used(), 400);
}

TEST(StagingBuffer, OverflowRefusedAndCounted) {
  StagingBuffer buf(1000);
  EXPECT_TRUE(buf.reserve(900));
  EXPECT_FALSE(buf.reserve(200));
  EXPECT_EQ(buf.overflow_events(), 1u);
  EXPECT_EQ(buf.used(), 900);  // refused reservation does not change usage
}

TEST(StagingBuffer, ForcedReserveRecordsOverflow) {
  StagingBuffer buf(1000);
  buf.reserve_forced(1500);
  EXPECT_EQ(buf.used(), 1500);
  EXPECT_EQ(buf.overflow_events(), 1u);
  EXPECT_EQ(buf.high_water(), 1500);
}

TEST(StagingBuffer, HighWaterTracksPeak) {
  StagingBuffer buf(1000);
  EXPECT_TRUE(buf.reserve(800));
  buf.release(600);
  EXPECT_TRUE(buf.reserve(100));
  EXPECT_EQ(buf.high_water(), 800);
}

TEST(StagingBuffer, OverReleaseThrows) {
  StagingBuffer buf(1000);
  EXPECT_TRUE(buf.reserve(100));
  EXPECT_THROW(buf.release(200), std::logic_error);
}

}  // namespace
}  // namespace smarth::storage
