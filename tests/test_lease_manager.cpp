// Unit tests for the namenode's write-lease bookkeeping: renewal, soft and
// hard expiry, release, reassignment (recovery takeover), and the
// deterministic hard-expired scan the lease monitor consumes.
#include "hdfs/lease_manager.hpp"

#include <gtest/gtest.h>

namespace smarth::hdfs {
namespace {

constexpr ClientId kAlice{1};
constexpr ClientId kBob{2};
constexpr ClientId kRecovery{-2};
constexpr FileId kFileA{10};
constexpr FileId kFileB{11};

class LeaseManagerTest : public ::testing::Test {
 protected:
  LeaseManager leases_{/*soft=*/seconds(10), /*hard=*/seconds(30)};
};

TEST_F(LeaseManagerTest, AddGrantsAndHoldsTracksOwnership) {
  leases_.add(kAlice, kFileA, seconds(0));
  EXPECT_TRUE(leases_.holds(kAlice, kFileA));
  EXPECT_FALSE(leases_.holds(kAlice, kFileB));
  EXPECT_FALSE(leases_.holds(kBob, kFileA));
  EXPECT_EQ(leases_.active_lease_count(), 1u);
}

TEST_F(LeaseManagerTest, RenewalKeepsLeaseFresh) {
  leases_.add(kAlice, kFileA, seconds(0));
  // Renew every 5 s: the lease never ages past the 10 s soft limit even
  // though far more than 30 s of wall time passes.
  for (int t = 5; t <= 60; t += 5) leases_.renew(kAlice, seconds(t));
  EXPECT_FALSE(leases_.soft_expired(kAlice, seconds(62)));
  EXPECT_FALSE(leases_.hard_expired(kAlice, seconds(62)));
  EXPECT_TRUE(leases_.hard_expired_files(seconds(62)).empty());
  EXPECT_GE(leases_.renewals(), 12u);
}

TEST_F(LeaseManagerTest, SoftThenHardExpiryWithoutRenewal) {
  leases_.add(kAlice, kFileA, seconds(0));
  EXPECT_FALSE(leases_.soft_expired(kAlice, seconds(10)));  // at the limit
  EXPECT_TRUE(leases_.soft_expired(kAlice, seconds(11)));
  EXPECT_FALSE(leases_.hard_expired(kAlice, seconds(30)));
  EXPECT_TRUE(leases_.hard_expired(kAlice, seconds(31)));
}

TEST_F(LeaseManagerTest, UnknownHolderCountsAsExpired) {
  // A holder the manager has never seen guards nothing: takeover must not
  // be blocked by a phantom lease.
  EXPECT_TRUE(leases_.soft_expired(kBob, seconds(0)));
  EXPECT_TRUE(leases_.hard_expired(kBob, seconds(0)));
}

TEST_F(LeaseManagerTest, ReleaseDropsFileButKeepsRenewalRecord) {
  leases_.add(kAlice, kFileA, seconds(0));
  leases_.add(kAlice, kFileB, seconds(0));
  leases_.release(kAlice, kFileA);
  EXPECT_FALSE(leases_.holds(kAlice, kFileA));
  EXPECT_TRUE(leases_.holds(kAlice, kFileB));
  leases_.release(kAlice, kFileB);
  EXPECT_EQ(leases_.active_lease_count(), 0u);
  // A file-less lease never surfaces in the expiry scan.
  EXPECT_TRUE(leases_.hard_expired_files(seconds(1000)).empty());
}

TEST_F(LeaseManagerTest, HardExpiredScanIsDeterministicAndComplete) {
  leases_.add(kBob, kFileB, seconds(0));
  leases_.add(kAlice, kFileA, seconds(0));
  leases_.add(kAlice, kFileB, seconds(0));
  const auto expired = leases_.hard_expired_files(seconds(31));
  ASSERT_EQ(expired.size(), 3u);
  // (holder, file) pairs in holder-then-file order, run after run.
  EXPECT_EQ(expired[0], std::make_pair(kAlice, kFileA));
  EXPECT_EQ(expired[1], std::make_pair(kAlice, kFileB));
  EXPECT_EQ(expired[2], std::make_pair(kBob, kFileB));
}

TEST_F(LeaseManagerTest, RenewalExcludesHolderFromScan) {
  leases_.add(kAlice, kFileA, seconds(0));
  leases_.add(kBob, kFileB, seconds(0));
  leases_.renew(kBob, seconds(25));
  const auto expired = leases_.hard_expired_files(seconds(31));
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], std::make_pair(kAlice, kFileA));
}

TEST_F(LeaseManagerTest, ReassignMovesFileAndRenewsNewHolder) {
  leases_.add(kAlice, kFileA, seconds(0));
  // The lease monitor hands the expired writer's file to the recovery
  // holder at t=31.
  leases_.reassign(kFileA, kAlice, kRecovery, seconds(31));
  EXPECT_FALSE(leases_.holds(kAlice, kFileA));
  EXPECT_TRUE(leases_.holds(kRecovery, kFileA));
  // The new holder's clock starts at the reassignment.
  EXPECT_FALSE(leases_.hard_expired(kRecovery, seconds(60)));
  EXPECT_TRUE(leases_.hard_expired(kRecovery, seconds(62)));
}

TEST_F(LeaseManagerTest, ReassignToNewWriterSupportsTakeover) {
  leases_.add(kAlice, kFileA, seconds(0));
  leases_.reassign(kFileA, kAlice, kBob, seconds(12));
  EXPECT_TRUE(leases_.holds(kBob, kFileA));
  EXPECT_EQ(leases_.active_lease_count(), 1u);
  const auto expired = leases_.hard_expired_files(seconds(50));
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].first, kBob);
}

}  // namespace
}  // namespace smarth::hdfs
