// Namenode service-capacity model and overload defense: the ServiceQueue's
// two modes (undefended FIFO vs admission control with priority bands,
// bounded depth, heartbeat batching, tenant caps), the typed-rejection retry
// path in call_with_retry, and the FaultSummary plumbing for the new
// overload counters.
#include "rpc/service_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "metrics/report.hpp"
#include "net/network.hpp"
#include "rpc/retry.hpp"
#include "rpc/rpc_bus.hpp"
#include "sim/simulation.hpp"
#include "trace/metrics_registry.hpp"

namespace smarth::rpc {
namespace {

class ServiceQueueTest : public ::testing::Test {
 protected:
  ServiceQueueTest() : sim_(1) { metrics::global_registry().reset(); }

  ServiceQueue make_queue(ServiceQueue::Config config) {
    return ServiceQueue(sim_, config);
  }

  sim::Simulation sim_;
};

TEST_F(ServiceQueueTest, UndefendedServesInArrivalOrderAtPerClassCost) {
  ServiceQueue::Config config;  // admission off: the undefended namenode
  ServiceQueue queue(sim_, config);
  std::vector<std::string> order;
  std::vector<SimTime> done_at;
  const auto record = [&](const char* name) {
    return [&order, &done_at, this, name] {
      order.push_back(name);
      done_at.push_back(sim_.now());
    };
  };
  queue.submit(ServiceClass::kMeta, -1, record("meta"), nullptr);
  queue.submit(ServiceClass::kAddBlock, -1, record("addblock"), nullptr);
  queue.submit(ServiceClass::kHeartbeat, -1, record("heartbeat"), nullptr);
  sim_.run();
  // Strict FIFO across classes: no priority in the undefended queue.
  ASSERT_EQ(order, (std::vector<std::string>{"meta", "addblock", "heartbeat"}));
  EXPECT_EQ(done_at[0], microseconds(150));
  EXPECT_EQ(done_at[1], microseconds(150 + 350));
  EXPECT_EQ(done_at[2], microseconds(150 + 350 + 30));
  EXPECT_EQ(queue.counters().admitted, 3u);
  EXPECT_EQ(queue.counters().served, 3u);
  EXPECT_EQ(queue.counters().shed_total, 0u);
}

TEST_F(ServiceQueueTest, UndefendedQueueDelayGrowsUnboundedly) {
  ServiceQueue::Config config;
  ServiceQueue queue(sim_, config);
  SimTime last_done = 0;
  for (int i = 0; i < 10; ++i) {
    queue.submit(ServiceClass::kAddBlock, -1,
                 [&last_done, this] { last_done = sim_.now(); }, nullptr);
  }
  sim_.run();
  // One server, no shedding: the 10th op waits for the other nine.
  EXPECT_EQ(last_done, 10 * microseconds(350));
  EXPECT_EQ(queue.counters().shed_total, 0u);
}

TEST_F(ServiceQueueTest, AdmissionServesHeartbeatsBeforeMetaBeforeAddBlock) {
  ServiceQueue::Config config;
  config.admission_control = true;
  ServiceQueue queue(sim_, config);
  std::vector<std::string> order;
  const auto record = [&order](const char* name) {
    return [&order, name] { order.push_back(name); };
  };
  // First op goes straight into service; the rest queue behind it and must
  // come out in priority order, not arrival order.
  queue.submit(ServiceClass::kAddBlock, -1, record("addblock1"), nullptr);
  queue.submit(ServiceClass::kAddBlock, -1, record("addblock2"), nullptr);
  queue.submit(ServiceClass::kMeta, -1, record("meta"), nullptr);
  queue.submit(ServiceClass::kHeartbeat, -1, record("heartbeat"), nullptr);
  sim_.run();
  ASSERT_EQ(order, (std::vector<std::string>{"addblock1", "heartbeat", "meta",
                                             "addblock2"}));
}

TEST_F(ServiceQueueTest, AdmissionBatchesQueuedHeartbeats) {
  ServiceQueue::Config config;
  config.admission_control = true;
  ServiceQueue queue(sim_, config);
  int heartbeats_served = 0;
  SimTime batch_done = 0;
  queue.submit(ServiceClass::kMeta, -1, [] {}, nullptr);  // occupy the server
  for (int i = 0; i < 5; ++i) {
    queue.submit(ServiceClass::kHeartbeat, -1,
                 [&heartbeats_served, &batch_done, this] {
                   ++heartbeats_served;
                   batch_done = sim_.now();
                 },
                 nullptr);
  }
  sim_.run();
  EXPECT_EQ(heartbeats_served, 5);
  EXPECT_EQ(queue.counters().heartbeat_batches, 1u);
  EXPECT_EQ(queue.counters().heartbeats_batched, 5u);
  // One slot: full cost for the first heartbeat + 25% marginal for the rest,
  // after the meta op that was in service.
  const SimDuration batch_cost =
      microseconds(30) + 4 * microseconds(30) / 4;  // 30 + 4 * 30 * 0.25
  EXPECT_EQ(batch_done, microseconds(150) + batch_cost);
}

TEST_F(ServiceQueueTest, AdmissionShedsArrivalWithNoLowerBandToDisplace) {
  ServiceQueue::Config config;
  config.admission_control = true;
  config.queue_capacity = 2;
  config.per_tenant_addblock_cap = 0;  // isolate the capacity path
  ServiceQueue queue(sim_, config);
  int served = 0;
  bool shed = false;
  queue.submit(ServiceClass::kAddBlock, -1, [&served] { ++served; }, nullptr);
  queue.submit(ServiceClass::kAddBlock, -1, [&served] { ++served; }, nullptr);
  queue.submit(ServiceClass::kAddBlock, -1, [&served] { ++served; }, nullptr);
  // Queue full of equal-priority ops: the arrival itself is shed, now.
  queue.submit(ServiceClass::kAddBlock, -1,
               [&served] { ++served; }, [&shed] { shed = true; });
  EXPECT_TRUE(shed);
  sim_.run();
  EXPECT_EQ(served, 3);
  EXPECT_EQ(queue.counters().shed_total, 1u);
  EXPECT_EQ(queue.counters().shed_add_blocks, 1u);
  EXPECT_EQ(queue.counters().addblock_cap_rejections, 0u);
}

TEST_F(ServiceQueueTest, AdmissionDisplacesNewestLowerPriorityOp) {
  ServiceQueue::Config config;
  config.admission_control = true;
  config.queue_capacity = 2;
  config.per_tenant_addblock_cap = 0;
  ServiceQueue queue(sim_, config);
  std::vector<std::string> order;
  bool newest_shed = false;
  const auto record = [&order](const char* name) {
    return [&order, name] { order.push_back(name); };
  };
  queue.submit(ServiceClass::kAddBlock, -1, record("in-service"), nullptr);
  queue.submit(ServiceClass::kAddBlock, -1, record("oldest"), nullptr);
  queue.submit(ServiceClass::kAddBlock, -1, record("newest"),
               [&newest_shed] { newest_shed = true; });
  // Full queue, but the heartbeat outranks the queued addBlocks: it evicts
  // the newest one instead of being dropped.
  queue.submit(ServiceClass::kHeartbeat, -1, record("heartbeat"), nullptr);
  sim_.run();
  EXPECT_TRUE(newest_shed);
  ASSERT_EQ(order, (std::vector<std::string>{"in-service", "heartbeat",
                                             "oldest"}));
  EXPECT_EQ(queue.counters().shed_total, 1u);
  EXPECT_EQ(queue.counters().shed_add_blocks, 1u);
}

TEST_F(ServiceQueueTest, PerTenantAddBlockCapRejectsAndReleases) {
  ServiceQueue::Config config;
  config.admission_control = true;
  config.per_tenant_addblock_cap = 2;
  ServiceQueue queue(sim_, config);
  int served = 0;
  bool capped = false;
  queue.submit(ServiceClass::kAddBlock, 7, [&served] { ++served; }, nullptr);
  queue.submit(ServiceClass::kAddBlock, 7, [&served] { ++served; }, nullptr);
  queue.submit(ServiceClass::kAddBlock, 7, [&served] { ++served; },
               [&capped] { capped = true; });
  EXPECT_TRUE(capped);
  EXPECT_EQ(queue.counters().addblock_cap_rejections, 1u);
  // A different tenant is not affected by tenant 7's cap.
  queue.submit(ServiceClass::kAddBlock, 8, [&served] { ++served; }, nullptr);
  sim_.run();
  EXPECT_EQ(served, 3);
  // Service completion released tenant 7's slots: the next one is admitted.
  bool capped_again = false;
  queue.submit(ServiceClass::kAddBlock, 7, [&served] { ++served; },
               [&capped_again] { capped_again = true; });
  sim_.run();
  EXPECT_FALSE(capped_again);
  EXPECT_EQ(served, 4);
}

TEST_F(ServiceQueueTest, CountersLandInMetricsRegistry) {
  ServiceQueue::Config config;
  config.admission_control = true;
  config.queue_capacity = 1;
  config.per_tenant_addblock_cap = 0;
  ServiceQueue queue(sim_, config);
  queue.submit(ServiceClass::kAddBlock, -1, [] {}, nullptr);
  queue.submit(ServiceClass::kAddBlock, -1, [] {}, nullptr);
  queue.submit(ServiceClass::kAddBlock, -1, [] {}, nullptr);  // shed
  sim_.run();
  const metrics::Registry& reg = metrics::global_registry();
  EXPECT_EQ(reg.find_counter("nn.rpc.admitted")->value(), 2u);
  EXPECT_EQ(reg.find_counter("nn.rpc.shed")->value(), 1u);
  EXPECT_NE(reg.find_histogram("nn.rpc.queue_wait_ns"), nullptr);
  EXPECT_NE(reg.find_histogram("nn.rpc.sojourn_ns"), nullptr);
}

// --- typed-rejection retry through the bus ---------------------------------

class OverloadRetryTest : public ::testing::Test {
 protected:
  OverloadRetryTest() : sim_(1), net_(sim_), bus_(net_) {
    metrics::global_registry().reset();
    client_ = net_.add_node("client", "/r0", Bandwidth::mbps(100));
    server_ = net_.add_node("server", "/r0", Bandwidth::mbps(100));
  }
  sim::Simulation sim_;
  net::Network net_;
  RpcBus bus_;
  NodeId client_, server_;
};

TEST_F(OverloadRetryTest, RetryOnRelaunchesAfterBackoffUntilSuccess) {
  int handler_calls = 0;
  int response = -1;
  SimTime responded_at = 0;
  // First attempt answers 0 ("overloaded"); the retry answers 42.
  call_with_retry<int>(
      bus_, sim_, RetryPolicy{}, client_, server_,
      [&handler_calls] { return ++handler_calls == 1 ? 0 : 42; },
      [&](int v) {
        response = v;
        responded_at = sim_.now();
      },
      [] { FAIL() << "gave up"; }, nullptr, "test", {}, nullptr,
      [](const int& v) { return v == 0; });
  sim_.run();
  EXPECT_EQ(handler_calls, 2);
  EXPECT_EQ(response, 42);
  // The relaunch waited out a real backoff, not an immediate hammer.
  EXPECT_GT(responded_at, milliseconds(100));
  EXPECT_EQ(metrics::global_registry().find_counter("rpc.overload_retries")
                ->value(),
            1u);
  // A retryable response is not a timeout retry: both series stay distinct.
  EXPECT_EQ(metrics::global_registry().find_counter("rpc.retries")->value(),
            1u);
}

TEST_F(OverloadRetryTest, FinalAttemptDeliversTheRetryableResponse) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  int response = -1;
  bool gave_up = false;
  call_with_retry<int>(
      bus_, sim_, policy, client_, server_, [] { return 0; },
      [&response](int v) { response = v; }, [&gave_up] { gave_up = true; },
      nullptr, "test", {}, nullptr, [](const int& v) { return v == 0; });
  sim_.run();
  // Attempts exhausted: the caller sees the overloaded answer and falls back
  // to its own budgeted wait instead of spinning forever.
  EXPECT_FALSE(gave_up);
  EXPECT_EQ(response, 0);
  EXPECT_EQ(metrics::global_registry().find_counter("rpc.overload_retries")
                ->value(),
            1u);
}

TEST_F(OverloadRetryTest, ShedResponseShortCircuitsTheServiceQueue) {
  ServiceQueue::Config config;
  config.admission_control = true;
  config.queue_capacity = 1;
  config.per_tenant_addblock_cap = 0;
  config.cost_add_block = seconds(1);
  ServiceQueue queue(sim_, config);
  bus_.set_service_queue(server_, &queue);
  std::vector<int> responses;
  for (int i = 0; i < 3; ++i) {
    bus_.call<int>(
        client_, server_, [] { return 1; },
        [&responses](int v) { responses.push_back(v); },
        CallOptions{ServiceClass::kAddBlock, -1}, [] { return -1; });
  }
  sim_.run();
  // One served, one queued+served, one shed with the typed response; every
  // caller heard back.
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(std::count(responses.begin(), responses.end(), -1), 1);
  EXPECT_EQ(std::count(responses.begin(), responses.end(), 1), 2);
  EXPECT_EQ(queue.counters().shed_total, 1u);
}

// --- FaultSummary plumbing --------------------------------------------------

TEST(FaultSummaryOverload, MergeAddsOverloadCounters) {
  metrics::FaultSummary a;
  a.nn_ops_admitted = 10;
  a.nn_ops_shed = 3;
  a.nn_shed_heartbeats = 1;
  a.nn_shed_add_blocks = 2;
  a.nn_addblock_cap_rejections = 1;
  a.nn_heartbeat_batches = 4;
  a.nn_heartbeats_batched = 12;
  a.overload_retries = 5;
  metrics::FaultSummary b;
  b.nn_ops_admitted = 7;
  b.nn_ops_shed = 2;
  b.nn_shed_heartbeats = 2;
  b.nn_shed_add_blocks = 0;
  b.nn_addblock_cap_rejections = 0;
  b.nn_heartbeat_batches = 1;
  b.nn_heartbeats_batched = 2;
  b.overload_retries = 1;
  a.merge(b);
  EXPECT_EQ(a.nn_ops_admitted, 17u);
  EXPECT_EQ(a.nn_ops_shed, 5u);
  EXPECT_EQ(a.nn_shed_heartbeats, 3u);
  EXPECT_EQ(a.nn_shed_add_blocks, 2u);
  EXPECT_EQ(a.nn_addblock_cap_rejections, 1u);
  EXPECT_EQ(a.nn_heartbeat_batches, 5u);
  EXPECT_EQ(a.nn_heartbeats_batched, 14u);
  EXPECT_EQ(a.overload_retries, 6u);
}

TEST(FaultSummaryOverload, FoldRegistryOverlaysOverloadCounters) {
  metrics::global_registry().reset();
  metrics::global_registry().counter("nn.rpc.admitted").add(20);
  metrics::global_registry().counter("nn.rpc.shed").add(4);
  metrics::global_registry().counter("nn.rpc.shed_heartbeats").add(1);
  metrics::global_registry().counter("nn.rpc.heartbeat_batches").add(2);
  metrics::global_registry().counter("nn.rpc.heartbeats_batched").add(6);
  metrics::global_registry().counter("rpc.overload_retries").add(3);
  metrics::FaultSummary summary;
  summary.fold_registry(metrics::global_registry());
  EXPECT_EQ(summary.nn_ops_admitted, 20u);
  EXPECT_EQ(summary.nn_ops_shed, 4u);
  EXPECT_EQ(summary.nn_shed_heartbeats, 1u);
  EXPECT_EQ(summary.nn_heartbeat_batches, 2u);
  EXPECT_EQ(summary.nn_heartbeats_batched, 6u);
  EXPECT_EQ(summary.overload_retries, 3u);
  // The render includes the new rows (smoke: no crash, mentions the series).
  const std::string table = metrics::render_fault_summary(summary);
  EXPECT_NE(table.find("nn ops shed"), std::string::npos);
  EXPECT_NE(table.find("overload retries"), std::string::npos);
  metrics::global_registry().reset();
}

}  // namespace
}  // namespace smarth::rpc
