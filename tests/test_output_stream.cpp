// Unit-level checks of the shared client stream machinery through a live
// cluster handle: block/packet geometry for awkward sizes, packet counting,
// and the baseline stream's stop-and-wait discipline.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

cluster::ClusterSpec spec_with(Bytes block, Bytes packet,
                               std::uint64_t seed = 42) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = block;
  spec.hdfs.packet_payload = packet;
  return spec;
}

/// Starts an upload and returns the live stream handle (simulation paused
/// right after create() resolves).
hdfs::OutputStreamBase* start_stream(Cluster& cluster, Bytes size) {
  cluster.upload("/f", size, Protocol::kHdfs, [](const hdfs::StreamStats&) {});
  cluster.sim().run_until(cluster.sim().now() + milliseconds(50));
  return cluster.latest_stream();
}

TEST(StreamGeometry, ExactMultiples) {
  Cluster cluster(spec_with(4 * kMiB, 64 * kKiB));
  hdfs::OutputStreamBase* stream = start_stream(cluster, 8 * kMiB);
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->total_blocks(), 2);
  EXPECT_EQ(stream->block_bytes(0), 4 * kMiB);
  EXPECT_EQ(stream->block_bytes(1), 4 * kMiB);
  EXPECT_EQ(stream->packets_in_block(0), 64);
  EXPECT_EQ(stream->packet_payload(0, 0), 64 * kKiB);
  EXPECT_EQ(stream->packet_payload(0, 63), 64 * kKiB);
}

TEST(StreamGeometry, PartialLastBlockAndPacket) {
  Cluster cluster(spec_with(4 * kMiB, 64 * kKiB));
  const Bytes size = 4 * kMiB + 100 * kKiB + 17;
  hdfs::OutputStreamBase* stream = start_stream(cluster, size);
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->total_blocks(), 2);
  EXPECT_EQ(stream->block_bytes(1), 100 * kKiB + 17);
  EXPECT_EQ(stream->packets_in_block(1), 2);  // 64 KiB + (36 KiB + 17 B)
  EXPECT_EQ(stream->packet_payload(1, 0), 64 * kKiB);
  EXPECT_EQ(stream->packet_payload(1, 1), 36 * kKiB + 17);
}

TEST(StreamGeometry, TinyFileSinglePacket) {
  Cluster cluster(spec_with(4 * kMiB, 64 * kKiB));
  hdfs::OutputStreamBase* stream = start_stream(cluster, 1);
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->total_blocks(), 1);
  EXPECT_EQ(stream->packets_in_block(0), 1);
  EXPECT_EQ(stream->packet_payload(0, 0), 1);
}

TEST(StreamGeometry, NonPowerOfTwoPacketSize) {
  Cluster cluster(spec_with(1000 * kKiB, 48 * kKiB));
  hdfs::OutputStreamBase* stream = start_stream(cluster, 1000 * kKiB);
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->packets_in_block(0), (1000 + 47) / 48);
  EXPECT_EQ(stream->packet_payload(0, 20), 1000 * kKiB - 20 * 48 * kKiB);
}

TEST(StreamGeometry, PacketCountInStats) {
  Cluster cluster(spec_with(4 * kMiB, 64 * kKiB));
  const Bytes size = 9 * kMiB + 1;
  const auto stats = cluster.run_upload("/g", size, Protocol::kHdfs);
  ASSERT_FALSE(stats.failed);
  // ceil(4MiB/64KiB)*2 + ceil((1MiB+1)/64KiB) = 64 + 64 + 17.
  EXPECT_EQ(stats.packets, 64 + 64 + 17);
}

TEST(StreamGeometry, EmptyUploadRejected) {
  Cluster cluster(spec_with(4 * kMiB, 64 * kKiB));
  EXPECT_THROW(cluster.run_upload("/e", 0, Protocol::kHdfs),
               std::logic_error);
}

TEST(BaselineStream, StopAndWaitNeverOverlapsBlocks) {
  // At any sampling instant, the baseline stream has at most one pipeline,
  // and the namenode has at most (completed_blocks + 1) block records.
  Cluster cluster(spec_with(2 * kMiB, 64 * kKiB));
  cluster.throttle_cross_rack(Bandwidth::mbps(30));
  bool done = false;
  cluster.upload("/f", 12 * kMiB, Protocol::kHdfs,
                 [&](const hdfs::StreamStats&) { done = true; });
  while (!done) {
    ASSERT_TRUE(
        cluster.sim().run_until(cluster.sim().now() + milliseconds(100)));
    hdfs::OutputStreamBase* stream = cluster.latest_stream();
    if (stream != nullptr && !stream->finished()) {
      EXPECT_LE(stream->active_pipeline_count(), 1u);
    }
    ASSERT_LT(cluster.sim().now(), seconds(10'000));
  }
}

TEST(BaselineStream, WindowBoundsOutstandingPackets) {
  // The dataQueue+ackQueue cap (80 packets) bounds how far production runs
  // ahead: stats_.packets grows roughly with acked progress, never the whole
  // file at once. Observe indirectly: early in the upload, produced packet
  // count is at most the window.
  cluster::ClusterSpec spec = spec_with(4 * kMiB, 64 * kKiB);
  Cluster cluster(spec);
  cluster.throttle_cross_rack(Bandwidth::mbps(10));
  cluster.upload("/f", 16 * kMiB, Protocol::kHdfs,
                 [](const hdfs::StreamStats&) {});
  // The window bounds *outstanding* packets: total produced can reach
  // window + already-acked. After 1 s at a 10 Mbps bottleneck at most
  // ~19 packets have been acked, so production must sit near 80 + 19 —
  // far below the 256 packets of the whole file.
  cluster.sim().run_until(seconds(1));
  hdfs::OutputStreamBase* stream = cluster.latest_stream();
  ASSERT_NE(stream, nullptr);
  const auto acked_bound = static_cast<std::int64_t>(
      Bandwidth::mbps(10).bits_per_second() /
      static_cast<double>(64 * kKiB * 8)) + 2;
  EXPECT_LE(stream->stats().packets,
            spec.hdfs.max_outstanding_packets + acked_bound);
  EXPECT_LT(stream->stats().packets, 256);
}

}  // namespace
}  // namespace smarth
