// Unit tests for the paper's analytic cost model (Formulas 1-3, §III-D).
#include "model/cost_model.hpp"

#include <gtest/gtest.h>

namespace smarth::model {
namespace {

CostParams paper_params() {
  CostParams p;
  p.file_size = 8 * kGiB;
  p.block_size = 64 * kMiB;
  p.packet_size = 64 * kKiB;
  p.t_n = milliseconds(2);
  p.t_c = microseconds(500);
  p.t_w = microseconds(700);
  p.b_min = Bandwidth::mbps(50);
  p.b_max = Bandwidth::mbps(216);
  return p;
}

TEST(CostModel, BlockAndPacketCounts) {
  const CostParams p = paper_params();
  EXPECT_EQ(p.blocks(), 128);
  EXPECT_EQ(p.packets(), 131072);
  CostParams q = p;
  q.file_size = 64 * kMiB + 1;
  EXPECT_EQ(q.blocks(), 2);  // ceil
}

TEST(CostModel, Formula1ProductionBound) {
  const CostParams p = paper_params();
  const SimDuration expected =
      p.t_n * 128 + (p.t_c + p.t_w) * 131072;
  EXPECT_EQ(production_bound_time(p), expected);
}

TEST(CostModel, Formula2UsesMinBandwidth) {
  const CostParams p = paper_params();
  const SimDuration per_packet =
      Bandwidth::mbps(50).transmit_time(64 * kKiB) + p.t_w;
  EXPECT_EQ(hdfs_network_bound_time(p), p.t_n * 128 + per_packet * 131072);
}

TEST(CostModel, Formula3UsesClientFirstHop) {
  const CostParams p = paper_params();
  const SimDuration per_packet =
      Bandwidth::mbps(216).transmit_time(64 * kKiB) + p.t_w;
  EXPECT_EQ(smarth_network_bound_time(p), p.t_n * 128 + per_packet * 131072);
}

TEST(CostModel, PredictorPicksNetworkBoundWhenProductionFast) {
  const CostParams p = paper_params();
  // Tc (0.5 ms) < P/Bmin (10.5 ms) => Formula 2; and < P/Bmax (2.4 ms) => 3.
  EXPECT_EQ(predict_hdfs_time(p), hdfs_network_bound_time(p));
  EXPECT_EQ(predict_smarth_time(p), smarth_network_bound_time(p));
}

TEST(CostModel, PredictorPicksProductionBoundWhenTcDominates) {
  CostParams p = paper_params();
  p.t_c = milliseconds(20);  // slower than any hop
  EXPECT_EQ(predict_hdfs_time(p), production_bound_time(p));
  EXPECT_EQ(predict_smarth_time(p), production_bound_time(p));
}

TEST(CostModel, MixedRegime) {
  CostParams p = paper_params();
  // Tc between P/Bmax (2.4 ms) and P/Bmin (10.5 ms): HDFS network-bound,
  // SMARTH production-bound.
  p.t_c = milliseconds(5);
  EXPECT_EQ(predict_hdfs_time(p), hdfs_network_bound_time(p));
  EXPECT_EQ(predict_smarth_time(p), production_bound_time(p));
}

TEST(CostModel, SmarthNeverSlowerInModel) {
  // Bmax >= Bmin implies predicted SMARTH time <= predicted HDFS time —
  // the paper's §III-D argument — across a parameter grid.
  for (double bmin : {10.0, 50.0, 100.0, 216.0}) {
    for (double bmax : {216.0, 376.0}) {
      for (std::int64_t tc_us : {100, 1000, 5000, 20000}) {
        CostParams p = paper_params();
        p.b_min = Bandwidth::mbps(bmin);
        p.b_max = Bandwidth::mbps(bmax);
        p.t_c = microseconds(tc_us);
        EXPECT_LE(predict_smarth_time(p), predict_hdfs_time(p))
            << "bmin=" << bmin << " bmax=" << bmax << " tc=" << tc_us;
      }
    }
  }
}

TEST(CostModel, ImprovementPercent) {
  EXPECT_DOUBLE_EQ(improvement_percent(seconds(200), seconds(100)), 100.0);
  EXPECT_DOUBLE_EQ(improvement_percent(seconds(100), seconds(100)), 0.0);
  EXPECT_NEAR(improvement_percent(seconds(127), seconds(100)), 27.0, 1e-9);
}

TEST(CostModel, ScalesLinearlyInFileSize) {
  CostParams p = paper_params();
  const SimDuration t8 = predict_hdfs_time(p);
  p.file_size = 4 * kGiB;
  const SimDuration t4 = predict_hdfs_time(p);
  EXPECT_NEAR(static_cast<double>(t8) / static_cast<double>(t4), 2.0, 0.01);
}

TEST(CostModel, InvalidParamsThrow) {
  CostParams p = paper_params();
  p.file_size = 0;
  EXPECT_THROW(production_bound_time(p), std::logic_error);
}

}  // namespace
}  // namespace smarth::model
