#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace smarth::net {
namespace {

TEST(Link, SerializationTimeMatchesCapacity) {
  sim::Simulation sim;
  Link link(sim, "l", Bandwidth::mbps(100), 0);
  SimTime delivered = -1;
  link.transmit(64 * kKiB, [&] { delivered = sim.now(); });
  sim.run();
  EXPECT_EQ(delivered, Bandwidth::mbps(100).transmit_time(64 * kKiB));
}

TEST(Link, LatencyAddsAfterSerialization) {
  sim::Simulation sim;
  Link link(sim, "l", Bandwidth::mbps(100), milliseconds(2));
  SimTime delivered = -1;
  link.transmit(64 * kKiB, [&] { delivered = sim.now(); });
  sim.run();
  EXPECT_EQ(delivered,
            Bandwidth::mbps(100).transmit_time(64 * kKiB) + milliseconds(2));
}

TEST(Link, FifoQueueingSharesSerially) {
  sim::Simulation sim;
  Link link(sim, "l", Bandwidth::mbps(80), 0);
  std::vector<SimTime> deliveries;
  const Bytes size = 10 * kKiB;
  for (int i = 0; i < 3; ++i) {
    link.transmit(size, [&] { deliveries.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(deliveries.size(), 3u);
  const SimDuration unit = Bandwidth::mbps(80).transmit_time(size);
  EXPECT_EQ(deliveries[0], unit);
  EXPECT_EQ(deliveries[1], 2 * unit);
  EXPECT_EQ(deliveries[2], 3 * unit);
}

TEST(Link, ZeroSizeStillPaysLatency) {
  sim::Simulation sim;
  Link link(sim, "l", Bandwidth::mbps(100), microseconds(500));
  SimTime delivered = -1;
  link.transmit(0, [&] { delivered = sim.now(); });
  sim.run();
  EXPECT_EQ(delivered, microseconds(500));
}

TEST(Link, UnlimitedCapacitySerializesInstantly) {
  sim::Simulation sim;
  Link link(sim, "l", kUnlimitedBandwidth, 0);
  SimTime delivered = -1;
  link.transmit(gib(1), [&] { delivered = sim.now(); });
  sim.run();
  EXPECT_EQ(delivered, 0);
}

TEST(Link, CapacityChangeAppliesToNextMessage) {
  sim::Simulation sim;
  Link link(sim, "l", Bandwidth::mbps(100), 0);
  std::vector<SimTime> deliveries;
  link.transmit(64 * kKiB, [&] { deliveries.push_back(sim.now()); });
  link.transmit(64 * kKiB, [&] { deliveries.push_back(sim.now()); });
  // Halve capacity while the first message is in flight.
  sim.schedule_at(microseconds(1),
                  [&] { link.set_capacity(Bandwidth::mbps(50)); });
  sim.run();
  const SimDuration fast = Bandwidth::mbps(100).transmit_time(64 * kKiB);
  const SimDuration slow = Bandwidth::mbps(50).transmit_time(64 * kKiB);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], fast);        // in-flight message unaffected
  EXPECT_EQ(deliveries[1], fast + slow);  // successor pays the new rate
}

TEST(Link, PauseHoldsQueueResumeDrains) {
  sim::Simulation sim;
  Link link(sim, "l", Bandwidth::mbps(100), 0);
  link.pause();
  SimTime delivered = -1;
  link.transmit(64 * kKiB, [&] { delivered = sim.now(); });
  sim.schedule_at(milliseconds(10), [&] { link.resume(); });
  sim.run();
  EXPECT_EQ(delivered,
            milliseconds(10) + Bandwidth::mbps(100).transmit_time(64 * kKiB));
}

TEST(Link, PauseDoesNotAbortInFlightMessage) {
  sim::Simulation sim;
  Link link(sim, "l", Bandwidth::mbps(100), 0);
  SimTime first = -1;
  SimTime second = -1;
  link.transmit(64 * kKiB, [&] { first = sim.now(); });
  link.transmit(64 * kKiB, [&] { second = sim.now(); });
  sim.schedule_at(microseconds(10), [&] { link.pause(); });
  sim.schedule_at(milliseconds(20), [&] { link.resume(); });
  sim.run();
  const SimDuration unit = Bandwidth::mbps(100).transmit_time(64 * kKiB);
  EXPECT_EQ(first, unit);  // finished despite the pause
  EXPECT_EQ(second, milliseconds(20) + unit);
}

TEST(Link, Statistics) {
  sim::Simulation sim;
  Link link(sim, "l", Bandwidth::mbps(100), 0);
  link.transmit(32 * kKiB, [] {});
  link.transmit(32 * kKiB, [] {});
  EXPECT_EQ(link.queued_count(), 1u);  // one in flight, one queued
  EXPECT_EQ(link.queued_bytes(), 32 * kKiB);
  sim.run();
  EXPECT_EQ(link.bytes_transmitted(), 64 * kKiB);
  EXPECT_EQ(link.messages_transmitted(), 2u);
  EXPECT_EQ(link.busy_time(),
            Bandwidth::mbps(100).transmit_time(64 * kKiB));
  EXPECT_FALSE(link.busy());
}

TEST(Link, NegativeSizeThrows) {
  sim::Simulation sim;
  Link link(sim, "l", Bandwidth::mbps(100), 0);
  EXPECT_THROW(link.transmit(-1, [] {}), std::logic_error);
}

}  // namespace
}  // namespace smarth::net
