// Integration: the namenode process dies mid-upload and comes back — via a
// cold restart (fsimage checkpoint + edit-log tail replay) or a warm standby
// failover. In-flight uploads must ride out the outage on their RPC retry
// and safe-mode budgets and complete byte-exact, deterministically per seed,
// under both protocols and both data fidelities. Also covers: failover
// downtime strictly below a cold restart's, and a lease hard-expiry racing
// the restart being recovered exactly once.
#include <gtest/gtest.h>

#include <optional>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "faults/fault_injector.hpp"
#include "hdfs/edit_log.hpp"
#include "hdfs/fsimage.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

cluster::ClusterSpec nn_spec(std::uint64_t seed, hdfs::DataFidelity fidelity) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 8 * kMiB;
  spec.hdfs.fidelity = fidelity;
  return spec;
}

/// Drives the cluster until `done` holds or `span` elapses.
template <typename Pred>
bool drive_until(Cluster& cluster, SimDuration span, Pred done) {
  const SimTime deadline = cluster.sim().now() + span;
  while (cluster.sim().now() < deadline) {
    if (done()) return true;
    cluster.sim().run_until(cluster.sim().now() + milliseconds(250));
  }
  return done();
}

/// Sum of the block lengths the namenode serves to readers.
Bytes served_bytes(Cluster& cluster, const std::string& path) {
  const auto located =
      cluster.namenode().get_block_locations(path, cluster.client_node(0));
  if (!located.ok()) return 0;
  Bytes total = 0;
  for (const auto& lb : located.value()) total += lb.length;
  return total;
}

struct OutageRun {
  SimDuration elapsed = 0;
  std::uint64_t events = 0;
  SimDuration downtime = 0;
};

/// One full scenario: upload under `protocol`, namenode crash at 2 s with
/// recovery initiated at 4 s, byte-exactness asserted at the end.
OutageRun upload_through_outage(std::uint64_t seed, Protocol protocol,
                                hdfs::DataFidelity fidelity) {
  constexpr Bytes kSize = 64 * kMiB;
  Cluster cluster(nn_spec(seed, fidelity));
  faults::FaultInjector injector(cluster, /*chaos_seed=*/3);
  injector.crash_and_restart_namenode(seconds(2), seconds(4));

  const hdfs::StreamStats stats =
      cluster.run_upload("/outage", kSize, protocol);
  EXPECT_FALSE(stats.failed) << stats.failure_reason;
  EXPECT_FALSE(cluster.namenode_crashed());
  EXPECT_EQ(cluster.namenode().restarts(), 1u);
  EXPECT_GE(cluster.namenode().safe_mode_entries(), 1u);
  EXPECT_FALSE(cluster.namenode().safe_mode());

  // Byte-exact: the namespace serves exactly the uploaded bytes and every
  // block carries its full replica set.
  EXPECT_EQ(served_bytes(cluster, "/outage"), kSize);
  EXPECT_TRUE(cluster.file_fully_replicated("/outage"));

  // The writer's lease survived the restart (its heartbeats resumed and
  // renewed before any expiry clock ran out).
  EXPECT_EQ(cluster.namenode().lease_expiries(), 0u);

  OutageRun run;
  run.elapsed = stats.elapsed();
  run.events = cluster.sim().events_executed();
  run.downtime = cluster.last_namenode_downtime();
  return run;
}

void crash_restart_byte_exact_and_deterministic(Protocol protocol,
                                                hdfs::DataFidelity fidelity) {
  const OutageRun first = upload_through_outage(17, protocol, fidelity);
  const OutageRun second = upload_through_outage(17, protocol, fidelity);
  // Same seed, fresh worlds: the entire timeline must reproduce bit-for-bit.
  EXPECT_EQ(first.elapsed, second.elapsed);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.downtime, second.downtime);
  EXPECT_GT(first.downtime, 0);
}

TEST(NamenodeRestart, HdfsPacketUploadSurvivesRestart) {
  crash_restart_byte_exact_and_deterministic(Protocol::kHdfs,
                                             hdfs::DataFidelity::kPacket);
}

TEST(NamenodeRestart, SmarthPacketUploadSurvivesRestart) {
  crash_restart_byte_exact_and_deterministic(Protocol::kSmarth,
                                             hdfs::DataFidelity::kPacket);
}

TEST(NamenodeRestart, HdfsBlockFidelityUploadSurvivesRestart) {
  crash_restart_byte_exact_and_deterministic(Protocol::kHdfs,
                                             hdfs::DataFidelity::kBlock);
}

TEST(NamenodeRestart, SmarthBlockFidelityUploadSurvivesRestart) {
  crash_restart_byte_exact_and_deterministic(Protocol::kSmarth,
                                             hdfs::DataFidelity::kBlock);
}

TEST(NamenodeRestart, CheckpointBoundsReplayAndTruncatesLog) {
  cluster::ClusterSpec spec = nn_spec(41, hdfs::DataFidelity::kPacket);
  spec.hdfs.checkpoint_interval = seconds(2);
  Cluster cluster(spec);

  const hdfs::StreamStats stats =
      cluster.run_upload("/ckpt", 64 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  ASSERT_GE(cluster.checkpointer().checkpoints(), 1u);

  // Truncation dropped everything at or below the image's txid, so the
  // resident log is exactly the tail a restart would replay.
  const hdfs::NamenodeImage& image = cluster.checkpointer().latest();
  EXPECT_GT(image.last_txid, 0);
  EXPECT_EQ(cluster.edit_log().tail(image.last_txid).size(),
            cluster.edit_log().size());
  EXPECT_LT(cluster.edit_log().size(), cluster.edit_log().appended());

  // A restart from that checkpoint replays only the tail and still restores
  // the full namespace.
  cluster.crash_namenode();
  cluster.restart_namenode();
  // Safe-mode exit implies the datanodes re-registered and re-reported every
  // closed block, so the namespace serves full lengths again.
  ASSERT_TRUE(drive_until(cluster, seconds(30), [&] {
    return !cluster.namenode_crashed() && !cluster.namenode().safe_mode();
  }));
  EXPECT_EQ(served_bytes(cluster, "/ckpt"), 64 * kMiB);
}

TEST(NamenodeRestart, FailoverDowntimeStrictlyBelowColdRestart) {
  // Same seed, same crash schedule; only the recovery path differs. The
  // checkpointer is disabled so the cold restart replays the whole log,
  // while the standby has already applied all but the last tail interval.
  const auto run = [](bool failover) {
    cluster::ClusterSpec spec = nn_spec(29, hdfs::DataFidelity::kPacket);
    spec.hdfs.checkpoint_interval = 0;
    Cluster cluster(spec);
    // Slow the pipeline down so the outage lands mid-upload.
    cluster.throttle_cross_rack(Bandwidth::mbps(60));
    if (failover) {
      cluster.enable_standby();
      cluster.crash_namenode_at(seconds(3));
      cluster.failover_namenode_at(seconds(5));
    } else {
      cluster.crash_namenode_at(seconds(3));
      cluster.restart_namenode_at(seconds(5));
    }
    const hdfs::StreamStats stats =
        cluster.run_upload("/fo", 64 * kMiB, Protocol::kSmarth);
    EXPECT_FALSE(stats.failed) << stats.failure_reason;
    EXPECT_FALSE(cluster.namenode_crashed());
    return cluster.last_namenode_downtime();
  };

  const SimDuration cold = run(false);
  const SimDuration warm = run(true);
  ASSERT_GT(cold, 0);
  ASSERT_GT(warm, 0);
  EXPECT_LT(warm, cold) << "standby promotion must beat a cold restart";
}

TEST(NamenodeRestart, StandbyTailsLogWithBoundedLag) {
  cluster::ClusterSpec spec = nn_spec(59, hdfs::DataFidelity::kPacket);
  spec.hdfs.checkpoint_interval = seconds(2);
  Cluster cluster(spec);
  cluster.enable_standby();

  const hdfs::StreamStats stats =
      cluster.run_upload("/tail", 64 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;

  // Bounded lag: whatever the active had journaled by the end of the upload
  // is applied on the standby within a couple of tail intervals (lease
  // renewals keep trickling in afterwards, so exact equality at an arbitrary
  // instant would race them).
  const std::int64_t target = cluster.edit_log().last_txid();
  EXPECT_GT(target, 0);
  cluster.sim().run_until(cluster.sim().now() +
                          2 * cluster.config().standby_tail_interval);
  ASSERT_NE(cluster.standby(), nullptr);
  EXPECT_GE(cluster.standby()->applied_txid(), target);
  // Checkpoint truncation never outran the standby: the tail it still needs
  // is always resident (tail() CHECK-fails if truncated past it).
  EXPECT_GE(cluster.edit_log().tail(cluster.standby()->applied_txid()).size(),
            0u);
}

// A lease hard-expiry racing the namenode restart: the writer dies, and the
// namenode crashes before its lease monitor can notice the expiry. After the
// restart every lease clock resets (the revived namenode cannot tell a dead
// writer from one whose renewals died with the process), so the expiry fires
// one hard limit later and recovery runs exactly once — replay must not let
// the monitor double-start it.
TEST(NamenodeRestart, LeaseHardExpiryRacingRestartRecoversExactlyOnce) {
  cluster::ClusterSpec spec = nn_spec(11, hdfs::DataFidelity::kPacket);
  spec.hdfs.lease_soft_limit = seconds(4);
  spec.hdfs.lease_hard_limit = seconds(8);
  spec.hdfs.lease_monitor_interval = seconds(1);
  Cluster cluster(spec);

  std::optional<hdfs::StreamStats> stats;
  cluster.upload("/race", 64 * kMiB, Protocol::kHdfs,
                 [&stats](const hdfs::StreamStats& s) { stats = s; });
  cluster.crash_client_at(0, seconds(2));
  // Hard expiry would be detected at ~10-11 s; the namenode dies just before
  // and recovers after a 2 s outage.
  cluster.crash_namenode_at(seconds(9) + milliseconds(500));
  cluster.restart_namenode_at(seconds(11) + milliseconds(500));

  ASSERT_TRUE(drive_until(cluster, seconds(60), [&] {
    const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/race");
    return stats.has_value() && !cluster.namenode_crashed() &&
           entry != nullptr && entry->state == hdfs::FileState::kClosed;
  })) << "file still under construction after restart + recovery budget";

  EXPECT_TRUE(stats->failed);
  const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/race");
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->closed_by_recovery);
  // Exactly one recovery: the counter is durable across the restart (image +
  // replay), so a double-start would show as 2.
  EXPECT_EQ(cluster.namenode().lease_expiries(), 1u);

  // Nothing re-recovers the already-closed file afterwards.
  cluster.sim().run_until(cluster.sim().now() + seconds(20));
  EXPECT_EQ(cluster.namenode().lease_expiries(), 1u);
  EXPECT_EQ(cluster.namenode().file_by_path("/race")->state,
            hdfs::FileState::kClosed);
}

}  // namespace
}  // namespace smarth
