// Block-scanner tests: the background scrubber walks finalized replicas at
// its configured byte budget, detects planted at-rest rot, reports it to the
// namenode (quarantine + invalidation), pauses while the node is crashed and
// resumes after restart, and stays disabled when the budget is zero.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "hdfs/datanode.hpp"
#include "hdfs/namenode.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

cluster::ClusterSpec scanner_spec(Bytes scan_rate, std::uint64_t seed = 42) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 4 * kMiB;
  spec.hdfs.ack_timeout = seconds(2);
  spec.hdfs.scanner_bytes_per_second = scan_rate;
  return spec;
}

void upload_and_settle(Cluster& cluster, const std::string& path, Bytes size) {
  const auto stats = cluster.run_upload(path, size, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
}

/// First datanode holding at least one finalized replica.
std::size_t holder_index(Cluster& cluster) {
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    if (cluster.datanode(i).block_store().finalized_count() > 0) return i;
  }
  return cluster.datanode_count();
}

/// First finalized block held by datanode `index`, or an invalid id.
BlockId first_finalized_block(Cluster& cluster, std::size_t index) {
  for (const auto& replica :
       cluster.datanode(index).block_store().all_replicas()) {
    if (replica.state == storage::ReplicaState::kFinalized) {
      return replica.block;
    }
  }
  return BlockId{-1};
}

TEST(BlockScanner, DisabledWhenBudgetZero) {
  Cluster cluster(scanner_spec(/*scan_rate=*/0));
  upload_and_settle(cluster, "/data/a.bin", 8 * kMiB);
  cluster.sim().run_until(cluster.sim().now() + seconds(30));
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    EXPECT_FALSE(cluster.datanode(i).scanner().running());
    EXPECT_EQ(cluster.datanode(i).scanner().bytes_scanned(), 0u);
  }
}

TEST(BlockScanner, CompletesPassesOverEveryFinalizedChunk) {
  Cluster cluster(scanner_spec(/*scan_rate=*/64 * kMiB));
  upload_and_settle(cluster, "/data/a.bin", 8 * kMiB);
  cluster.sim().run_until(cluster.sim().now() + seconds(10));
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    const hdfs::BlockScanner& scanner = cluster.datanode(i).scanner();
    EXPECT_TRUE(scanner.running());
    if (cluster.datanode(i).block_store().finalized_count() == 0) continue;
    EXPECT_GE(scanner.scan_passes(), 1u) << "datanode " << i;
    Bytes stored = 0;
    for (const auto& replica :
         cluster.datanode(i).block_store().all_replicas()) {
      stored += replica.bytes;
    }
    EXPECT_GE(scanner.bytes_scanned(), stored) << "datanode " << i;
    EXPECT_GT(scanner.chunks_scanned(), 0u) << "datanode " << i;
    EXPECT_EQ(scanner.rot_detected(), 0u) << "datanode " << i;
  }
}

TEST(BlockScanner, BudgetBoundsScrubRate) {
  const Bytes rate = 1 * kMiB;
  Cluster cluster(scanner_spec(rate));
  upload_and_settle(cluster, "/data/a.bin", 8 * kMiB);
  const std::size_t dn = holder_index(cluster);
  ASSERT_LT(dn, cluster.datanode_count());
  const SimTime from = cluster.sim().now();
  const Bytes before = cluster.datanode(dn).scanner().bytes_scanned();
  cluster.sim().run_until(from + seconds(10));
  const Bytes scanned = cluster.datanode(dn).scanner().bytes_scanned() - before;
  // Never more than the budget allows over the window (one chunk of slack
  // for a read already in flight when the window opened).
  const Bytes chunk = cluster.config().checksum_chunk_size;
  EXPECT_LE(scanned, rate * 10 + chunk);
  EXPECT_GT(scanned, 0u);
}

TEST(BlockScanner, DetectsReportsAndTriggersInvalidation) {
  Cluster cluster(scanner_spec(/*scan_rate=*/64 * kMiB));
  upload_and_settle(cluster, "/data/a.bin", 8 * kMiB);
  const std::size_t dn = holder_index(cluster);
  ASSERT_LT(dn, cluster.datanode_count());
  const BlockId victim = first_finalized_block(cluster, dn);
  ASSERT_TRUE(victim.valid());
  ASSERT_TRUE(cluster.datanode(dn).rot_replica_chunk(victim, 0).ok());
  ASSERT_EQ(cluster.datanode(dn).block_store().chunks_rotted(), 1u);

  cluster.sim().run_until(cluster.sim().now() + seconds(10));
  EXPECT_GE(cluster.datanode(dn).scanner().rot_detected(), 1u);
  EXPECT_GE(cluster.namenode().bad_replica_reports(), 1u);
  EXPECT_GE(cluster.namenode().invalidations_issued(), 1u);
  // The invalidation executor dropped the rotted replica from the store.
  EXPECT_GE(cluster.datanode(dn).replicas_invalidated(), 1u);
  EXPECT_FALSE(cluster.datanode(dn).block_store().replica(victim).ok());
}

TEST(BlockScanner, PausesWhileCrashedAndResumesAfterRestart) {
  Cluster cluster(scanner_spec(/*scan_rate=*/8 * kMiB));
  upload_and_settle(cluster, "/data/a.bin", 8 * kMiB);
  const std::size_t dn = holder_index(cluster);
  ASSERT_LT(dn, cluster.datanode_count());
  ASSERT_TRUE(cluster.datanode(dn).scanner().running());

  cluster.datanode(dn).crash();
  EXPECT_FALSE(cluster.datanode(dn).scanner().running());
  const Bytes at_crash = cluster.datanode(dn).scanner().bytes_scanned();
  cluster.sim().run_until(cluster.sim().now() + seconds(5));
  EXPECT_EQ(cluster.datanode(dn).scanner().bytes_scanned(), at_crash);

  cluster.datanode(dn).restart();
  EXPECT_TRUE(cluster.datanode(dn).scanner().running());
  cluster.sim().run_until(cluster.sim().now() + seconds(5));
  EXPECT_GT(cluster.datanode(dn).scanner().bytes_scanned(), at_crash);
}

}  // namespace
}  // namespace smarth
