// Tests for the bulk lane's per-flow round-robin scheduling: flows share a
// link approximately fairly (like per-connection TCP), single flows keep
// strict FIFO order, and control messages still preempt all bulk queues.
#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "sim/simulation.hpp"

namespace smarth::net {
namespace {

class LinkFairnessTest : public ::testing::Test {
 protected:
  LinkFairnessTest() : link_(sim_, "l", Bandwidth::mbps(100), 0) {}
  sim::Simulation sim_;
  Link link_;
};

TEST_F(LinkFairnessTest, SingleFlowStaysFifo) {
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    link_.transmit(kKiB, [&order, i] { order.push_back(i); },
                   LinkPriority::kBulk, /*flow=*/7);
  }
  sim_.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST_F(LinkFairnessTest, TwoFlowsInterleave) {
  // Flow A queues 8 messages first; flow B's messages must not wait for all
  // of A (round-robin interleaving).
  std::vector<char> order;
  for (int i = 0; i < 8; ++i) {
    link_.transmit(kKiB, [&order] { order.push_back('A'); },
                   LinkPriority::kBulk, 1);
  }
  for (int i = 0; i < 8; ++i) {
    link_.transmit(kKiB, [&order] { order.push_back('B'); },
                   LinkPriority::kBulk, 2);
  }
  sim_.run();
  ASSERT_EQ(order.size(), 16u);
  // B's first message must arrive long before A drains.
  const auto first_b = std::find(order.begin(), order.end(), 'B');
  EXPECT_LE(first_b - order.begin(), 2);
  // And the tail should alternate rather than cluster.
  int transitions = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] != order[i - 1]) ++transitions;
  }
  EXPECT_GE(transitions, 10);
}

TEST_F(LinkFairnessTest, ThroughputSharedEvenly) {
  // Two saturating flows of equal demand finish within ~one message of each
  // other.
  SimTime done_a = 0;
  SimTime done_b = 0;
  for (int i = 0; i < 50; ++i) {
    link_.transmit(64 * kKiB, [&] { done_a = sim_.now(); },
                   LinkPriority::kBulk, 1);
    link_.transmit(64 * kKiB, [&] { done_b = sim_.now(); },
                   LinkPriority::kBulk, 2);
  }
  sim_.run();
  const SimDuration unit = Bandwidth::mbps(100).transmit_time(64 * kKiB);
  EXPECT_LE(std::abs(done_a - done_b), 2 * unit);
}

TEST_F(LinkFairnessTest, LateFlowJoinsRing) {
  // A flow arriving while another has a deep backlog still gets served at
  // ~half rate from its arrival.
  for (int i = 0; i < 64; ++i) {
    link_.transmit(64 * kKiB, [] {}, LinkPriority::kBulk, 1);
  }
  const SimDuration unit = Bandwidth::mbps(100).transmit_time(64 * kKiB);
  SimTime late_delivery = -1;
  sim_.run_until(4 * unit);
  link_.transmit(64 * kKiB, [&] { late_delivery = sim_.now(); },
                 LinkPriority::kBulk, 2);
  sim_.run();
  // Without fairness it would wait for ~60 more backlog messages; with RR it
  // ships within a few service slots.
  EXPECT_LT(late_delivery, 9 * unit);
}

TEST_F(LinkFairnessTest, ControlBeatsAllFlows) {
  for (int i = 0; i < 16; ++i) {
    link_.transmit(64 * kKiB, [] {}, LinkPriority::kBulk,
                   static_cast<FlowKey>(i));
  }
  SimTime control_at = -1;
  link_.transmit(64, [&] { control_at = sim_.now(); },
                 LinkPriority::kControl);
  sim_.run();
  const SimDuration unit = Bandwidth::mbps(100).transmit_time(64 * kKiB);
  // Only the in-flight bulk message delays it.
  EXPECT_LE(control_at, unit + Bandwidth::mbps(100).transmit_time(64) + 1);
}

TEST_F(LinkFairnessTest, QueueAccountingAcrossFlows) {
  link_.transmit(kKiB, [] {}, LinkPriority::kBulk, 1);
  link_.transmit(kKiB, [] {}, LinkPriority::kBulk, 2);
  link_.transmit(kKiB, [] {}, LinkPriority::kBulk, 2);
  link_.transmit(64, [] {}, LinkPriority::kControl);
  // One message is already in service; three remain queued.
  EXPECT_EQ(link_.queued_count(), 3u);
  sim_.run();
  EXPECT_EQ(link_.queued_count(), 0u);
  EXPECT_EQ(link_.messages_transmitted(), 4u);
}

TEST_F(LinkFairnessTest, ManyFlowsAllComplete) {
  int delivered = 0;
  for (int f = 0; f < 32; ++f) {
    for (int i = 0; i < 4; ++i) {
      link_.transmit(kKiB, [&delivered] { ++delivered; },
                     LinkPriority::kBulk, static_cast<FlowKey>(f));
    }
  }
  sim_.run();
  EXPECT_EQ(delivered, 128);
}

}  // namespace
}  // namespace smarth::net
