#include "net/network.hpp"

#include <gtest/gtest.h>

#include "net/cross_traffic.hpp"
#include "sim/simulation.hpp"

namespace smarth::net {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(1), net_(sim_, config()) {
    a_ = net_.add_node("a", "/rack0", Bandwidth::mbps(100));
    b_ = net_.add_node("b", "/rack0", Bandwidth::mbps(100));
    c_ = net_.add_node("c", "/rack1", Bandwidth::mbps(100));
  }

  static NetworkConfig config() {
    NetworkConfig cfg;
    cfg.same_rack_latency = microseconds(100);
    cfg.cross_rack_latency = microseconds(300);
    cfg.loopback_latency = microseconds(10);
    return cfg;
  }

  SimTime send_and_time(NodeId from, NodeId to, Bytes size) {
    SimTime delivered = -1;
    const SimTime start = sim_.now();
    net_.send(from, to, size, [&] { delivered = sim_.now(); });
    sim_.run();
    return delivered - start;
  }

  sim::Simulation sim_;
  Network net_;
  NodeId a_, b_, c_;
};

TEST_F(NetworkTest, SameRackPathCost) {
  // egress serialize + ingress serialize + propagation.
  const SimDuration unit = Bandwidth::mbps(100).transmit_time(64 * kKiB);
  EXPECT_EQ(send_and_time(a_, b_, 64 * kKiB), 2 * unit + microseconds(100));
}

TEST_F(NetworkTest, CrossRackPaysHigherLatency) {
  const SimDuration unit = Bandwidth::mbps(100).transmit_time(64 * kKiB);
  EXPECT_EQ(send_and_time(a_, c_, 64 * kKiB), 2 * unit + microseconds(300));
}

TEST_F(NetworkTest, LoopbackSkipsLinks) {
  EXPECT_EQ(send_and_time(a_, a_, gib(1)), microseconds(10));
}

TEST_F(NetworkTest, CrossRackThrottleSlowsOnlyCrossTraffic) {
  net_.set_cross_rack_throttle(Bandwidth::mbps(10));
  const SimDuration fast = Bandwidth::mbps(100).transmit_time(64 * kKiB);
  const SimDuration slow = Bandwidth::mbps(10).transmit_time(64 * kKiB);
  // Cross-rack: egress + 2 shapers + ingress.
  EXPECT_EQ(send_and_time(a_, c_, 64 * kKiB),
            2 * fast + 2 * slow + microseconds(300));
  // Same-rack is unaffected.
  EXPECT_EQ(send_and_time(a_, b_, 64 * kKiB), 2 * fast + microseconds(100));
}

TEST_F(NetworkTest, CrossRackThrottleRemovable) {
  net_.set_cross_rack_throttle(Bandwidth::mbps(10));
  ASSERT_TRUE(net_.cross_rack_throttle().has_value());
  net_.set_cross_rack_throttle(kUnlimitedBandwidth);
  EXPECT_FALSE(net_.cross_rack_throttle().has_value());
  const SimDuration unit = Bandwidth::mbps(100).transmit_time(64 * kKiB);
  EXPECT_EQ(send_and_time(a_, c_, 64 * kKiB), 2 * unit + microseconds(300));
}

TEST_F(NetworkTest, NodeThrottleAffectsBothDirections) {
  net_.set_node_nic(b_, Bandwidth::mbps(10));
  const SimDuration fast = Bandwidth::mbps(100).transmit_time(64 * kKiB);
  const SimDuration slow = Bandwidth::mbps(10).transmit_time(64 * kKiB);
  EXPECT_EQ(send_and_time(a_, b_, 64 * kKiB), fast + slow + microseconds(100));
  EXPECT_EQ(send_and_time(b_, a_, 64 * kKiB), slow + fast + microseconds(100));
  EXPECT_EQ(net_.node_nic(b_).mbps(), 10.0);
}

TEST_F(NetworkTest, SharedRackUplinkSerializesFlows) {
  net_.set_shared_rack_uplink(Bandwidth::mbps(10));
  // Two cross-rack messages from the same rack share the rack0 uplink.
  SimTime d1 = -1, d2 = -1;
  net_.send(a_, c_, 64 * kKiB, [&] { d1 = sim_.now(); });
  net_.send(b_, c_, 64 * kKiB, [&] { d2 = sim_.now(); });
  sim_.run();
  const SimDuration slow = Bandwidth::mbps(10).transmit_time(64 * kKiB);
  // The second message finishes roughly one uplink-serialization later.
  EXPECT_GE(d2 - d1, slow / 2);
}

TEST_F(NetworkTest, FifoOrderingPerPair) {
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    net_.send(a_, b_, kKiB, [&order, i] { order.push_back(i); });
  }
  sim_.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(NetworkTest, IngressPauseBackpressure) {
  net_.pause_ingress(b_);
  EXPECT_TRUE(net_.ingress_paused(b_));
  SimTime delivered = -1;
  net_.send(a_, b_, 64 * kKiB, [&] { delivered = sim_.now(); });
  sim_.schedule_at(seconds(1), [&] { net_.resume_ingress(b_); });
  sim_.run();
  EXPECT_GT(delivered, seconds(1));
}

TEST_F(NetworkTest, ByteAccounting) {
  net_.send(a_, b_, 1000, [] {});
  net_.send(a_, c_, 500, [] {});
  sim_.run();
  EXPECT_EQ(net_.bytes_sent(a_), 1500);
  EXPECT_EQ(net_.bytes_received(b_), 1000);
  EXPECT_EQ(net_.bytes_received(c_), 500);
  EXPECT_EQ(net_.messages_delivered(), 2u);
}

TEST_F(NetworkTest, EgressSharingBetweenDestinations) {
  // Two messages from a to different destinations serialize on a's egress.
  SimTime d1 = -1, d2 = -1;
  net_.send(a_, b_, 64 * kKiB, [&] { d1 = sim_.now(); });
  net_.send(a_, c_, 64 * kKiB, [&] { d2 = sim_.now(); });
  sim_.run();
  const SimDuration unit = Bandwidth::mbps(100).transmit_time(64 * kKiB);
  EXPECT_EQ(d1, 2 * unit + microseconds(100));
  // Second message leaves egress only after the first finished serializing.
  EXPECT_EQ(d2, 2 * unit + unit + microseconds(300));
}

TEST(CrossTraffic, ConsumesBandwidthWhileRunning) {
  sim::Simulation sim(2);
  Network net(sim, {});
  const NodeId a = net.add_node("a", "/r0", Bandwidth::mbps(100));
  const NodeId b = net.add_node("b", "/r0", Bandwidth::mbps(100));
  CrossTraffic traffic(net, a, b, {});
  traffic.start();
  sim.run_until(seconds(1));
  traffic.stop();
  sim.run();
  // Each loop iteration pays egress + ingress serialization plus latency
  // (~10.7 ms per 64 KiB message), so ~93 messages ≈ 6 MB in one second.
  EXPECT_GT(traffic.bytes_sent(), 5 * kMiB);
  EXPECT_GT(traffic.messages_sent(), 80u);
}

TEST(CrossTraffic, ThinkTimeReducesLoad) {
  sim::Simulation sim(3);
  Network net(sim, {});
  const NodeId a = net.add_node("a", "/r0", Bandwidth::mbps(100));
  const NodeId b = net.add_node("b", "/r0", Bandwidth::mbps(100));
  CrossTraffic::Config cfg;
  cfg.think_time = milliseconds(100);
  CrossTraffic traffic(net, a, b, cfg);
  traffic.start();
  sim.run_until(seconds(1));
  traffic.stop();
  sim.run();
  EXPECT_LE(traffic.messages_sent(), 12u);
}

}  // namespace
}  // namespace smarth::net
