// Tests for the CLI flag parser and the time-series Timeline.
#include <gtest/gtest.h>

#include "common/flags.hpp"
#include "metrics/timeline.hpp"

namespace smarth {
namespace {

FlagSet make_flags() {
  FlagSet flags("test");
  flags.declare("cluster", "cluster name", "small");
  flags.declare("size-gb", "upload size", "1");
  flags.declare("seed", "rng seed", "42");
  flags.declare_bool("verbose", "logging");
  return flags;
}

Status parse(FlagSet& flags, std::vector<const char*> args) {
  args.insert(args.begin(), "test");
  return flags.parse(static_cast<int>(args.size()), args.data());
}

TEST(Flags, DefaultsApply) {
  FlagSet flags = make_flags();
  ASSERT_TRUE(parse(flags, {}).ok());
  EXPECT_EQ(flags.get("cluster"), "small");
  EXPECT_EQ(flags.get_int("seed"), 42);
  EXPECT_FALSE(flags.get_bool("verbose"));
  EXPECT_FALSE(flags.has("cluster"));  // not explicitly set
}

TEST(Flags, EqualsForm) {
  FlagSet flags = make_flags();
  ASSERT_TRUE(parse(flags, {"--cluster=hetero", "--size-gb=2.5"}).ok());
  EXPECT_EQ(flags.get("cluster"), "hetero");
  EXPECT_DOUBLE_EQ(*flags.get_double("size-gb"), 2.5);
  EXPECT_TRUE(flags.has("cluster"));
}

TEST(Flags, SpaceForm) {
  FlagSet flags = make_flags();
  ASSERT_TRUE(parse(flags, {"--cluster", "medium", "--seed", "7"}).ok());
  EXPECT_EQ(flags.get("cluster"), "medium");
  EXPECT_EQ(flags.get_int("seed"), 7);
}

TEST(Flags, BoolWithoutValue) {
  FlagSet flags = make_flags();
  ASSERT_TRUE(parse(flags, {"--verbose"}).ok());
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Flags, UnknownFlagRejected) {
  FlagSet flags = make_flags();
  const Status status = parse(flags, {"--nope=1"});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "unknown_flag");
}

TEST(Flags, MissingValueRejected) {
  FlagSet flags = make_flags();
  const Status status = parse(flags, {"--cluster"});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "missing_value");
}

TEST(Flags, PositionalCollected) {
  FlagSet flags = make_flags();
  ASSERT_TRUE(parse(flags, {"file1", "--seed=1", "file2"}).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"file1", "file2"}));
}

TEST(Flags, BadNumbersReturnNullopt) {
  FlagSet flags = make_flags();
  ASSERT_TRUE(parse(flags, {"--cluster=abc"}).ok());
  EXPECT_FALSE(flags.get_int("cluster").has_value());
  EXPECT_FALSE(flags.get_double("cluster").has_value());
}

TEST(Flags, UsageListsEverything) {
  FlagSet flags = make_flags();
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("--cluster"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("default: small"), std::string::npos);
}

TEST(Timeline, RecordsAndAggregates) {
  metrics::Timeline t("x");
  t.record(0, 1.0);
  t.record(seconds(10), 3.0);
  t.record(seconds(20), 0.0);
  EXPECT_DOUBLE_EQ(t.max_value(), 3.0);
  EXPECT_DOUBLE_EQ(t.min_value(), 0.0);
  // 0..10s at 1, 10..20s at 3, 20..30s at 0 => mean 4/3 over 30 s.
  EXPECT_NEAR(t.time_weighted_mean(seconds(30)), 4.0 / 3.0, 1e-9);
}

TEST(Timeline, OutOfOrderThrows) {
  metrics::Timeline t("x");
  t.record(seconds(5), 1.0);
  EXPECT_THROW(t.record(seconds(4), 1.0), std::logic_error);
}

TEST(Timeline, AsciiRenderShape) {
  metrics::Timeline t("pipelines");
  t.record(0, 1.0);
  t.record(seconds(5), 3.0);
  t.record(seconds(10), 2.0);
  const std::string chart = t.render_ascii(40);
  EXPECT_NE(chart.find("pipelines"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
  // Bottom level is always filled once values are >= 1.
  EXPECT_NE(chart.find("####"), std::string::npos);
}

TEST(Timeline, EmptyRender) {
  metrics::Timeline t("empty");
  EXPECT_NE(t.render_ascii().find("(empty)"), std::string::npos);
  EXPECT_DOUBLE_EQ(t.time_weighted_mean(seconds(1)), 0.0);
}

}  // namespace
}  // namespace smarth
