// Tests for the metrics renderers and the experiment harness: comparison
// math, table/CSV shapes, scenario builders, speed pre-warming, and
// protocol-pairing on identical worlds.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "metrics/report.hpp"
#include "metrics/timeline.hpp"

namespace smarth {
namespace {

TEST(Metrics, ImprovementPercent) {
  metrics::ComparisonRow row{"x", 200.0, 100.0};
  EXPECT_DOUBLE_EQ(row.improvement_percent(), 100.0);
  row.smarth_seconds = 200.0;
  EXPECT_DOUBLE_EQ(row.improvement_percent(), 0.0);
}

TEST(Metrics, ComparisonTableShape) {
  std::vector<metrics::ComparisonRow> rows{{"50 Mbps", 100, 50},
                                           {"100 Mbps", 60, 40}};
  const std::string table = metrics::render_comparison_table("throttle", rows);
  EXPECT_NE(table.find("throttle"), std::string::npos);
  EXPECT_NE(table.find("50 Mbps"), std::string::npos);
  EXPECT_NE(table.find("100.0"), std::string::npos);  // improvement column
  const std::string csv = metrics::comparison_csv("throttle", rows);
  EXPECT_NE(csv.find("throttle,hdfs_seconds"), std::string::npos);
  EXPECT_NE(csv.find("50 Mbps,100.0000"), std::string::npos);
}

TEST(Metrics, ObservationsTable) {
  hdfs::StreamStats stats;
  stats.file_size = kGiB;
  stats.started_at = 0;
  stats.finished_at = seconds(10);
  stats.blocks = 16;
  stats.pipelines_created = 16;
  stats.max_concurrent_pipelines = 3;
  metrics::UploadObservation obs{"hetero", "SMARTH", stats};
  EXPECT_DOUBLE_EQ(obs.seconds(), 10.0);
  EXPECT_NEAR(obs.throughput_mbps(), 859.0, 1.0);
  const std::string table = metrics::render_observations({obs});
  EXPECT_NE(table.find("SMARTH"), std::string::npos);
  EXPECT_NE(table.find("hetero"), std::string::npos);
}

TEST(Harness, RunProtocolProducesCleanStats) {
  harness::Scenario scenario = harness::two_rack_scenario(
      "t", [](std::uint64_t seed) {
        cluster::ClusterSpec spec = cluster::small_cluster(seed);
        spec.hdfs.block_size = 4 * kMiB;
        return spec;
      },
      Bandwidth::mbps(50), 8 * kMiB);
  const auto stats =
      harness::run_protocol(scenario, cluster::Protocol::kHdfs, 7);
  EXPECT_FALSE(stats.failed);
  EXPECT_EQ(stats.blocks, 2);
}

TEST(Harness, CompareUsesIdenticalWorlds) {
  harness::Scenario scenario = harness::two_rack_scenario(
      "t", [](std::uint64_t seed) {
        cluster::ClusterSpec spec = cluster::small_cluster(seed);
        spec.hdfs.block_size = 4 * kMiB;
        return spec;
      },
      Bandwidth::mbps(50), 12 * kMiB);
  const auto row = harness::compare_protocols(scenario, 7);
  EXPECT_GT(row.hdfs_seconds, 0.0);
  EXPECT_GT(row.smarth_seconds, 0.0);
  // Under a deep throttle, SMARTH must not lose.
  EXPECT_GE(row.improvement_percent(), -5.0);
  // Deterministic: re-running yields the identical row.
  const auto row2 = harness::compare_protocols(scenario, 7);
  EXPECT_DOUBLE_EQ(row.hdfs_seconds, row2.hdfs_seconds);
  EXPECT_DOUBLE_EQ(row.smarth_seconds, row2.smarth_seconds);
}

TEST(Harness, AveragedRepeatsDiffer) {
  harness::Scenario scenario = harness::contention_scenario(
      "c", [](std::uint64_t seed) {
        cluster::ClusterSpec spec = cluster::small_cluster(seed);
        spec.hdfs.block_size = 4 * kMiB;
        return spec;
      },
      2, Bandwidth::mbps(50), 12 * kMiB);
  const auto mean = harness::compare_protocols_averaged(scenario, 3, 100);
  EXPECT_GT(mean.hdfs_seconds, 0.0);
  EXPECT_GT(mean.smarth_seconds, 0.0);
}

TEST(Harness, ContentionScenarioThrottlesExactlyK) {
  harness::Scenario scenario = harness::contention_scenario(
      "c", [](std::uint64_t seed) { return cluster::small_cluster(seed); },
      3, Bandwidth::mbps(50), kMiB);
  cluster::Cluster cluster(scenario.make_spec(1));
  scenario.prepare(cluster);
  int slow = 0;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    if (cluster.network().node_nic(cluster.datanode_id(i)).mbps() == 50.0) {
      ++slow;
    }
  }
  EXPECT_EQ(slow, 3);
}

TEST(Harness, WarmSpeedRecordsMatchConfiguration) {
  cluster::ClusterSpec spec = cluster::small_cluster(1);
  cluster::Cluster cluster(spec);
  cluster.throttle_cross_rack(Bandwidth::mbps(50));
  harness::warm_speed_records(cluster);
  const auto& topo = cluster.network().topology();
  ASSERT_TRUE(cluster.speed_tracker().has_records());
  ASSERT_TRUE(
      cluster.namenode().speed_board().has_records(cluster.client().id()));
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    const auto speed = cluster.speed_tracker().speed(cluster.datanode_id(i));
    ASSERT_TRUE(speed.has_value());
    if (topo.same_rack(cluster.datanode_id(i), cluster.client_node())) {
      EXPECT_GT(speed->mbps(), 200.0);
    } else {
      EXPECT_LE(speed->mbps(), 51.0);
    }
  }
}

TEST(Timeline, SinglePointMeanHoldsValueToHorizon) {
  metrics::Timeline t("x");
  t.record(seconds(5), 4.0);
  // One sample: its value holds from its own time to the horizon.
  EXPECT_DOUBLE_EQ(t.time_weighted_mean(seconds(10)), 4.0);
  // Horizon at or before the sample leaves an empty window: mean is 0, and
  // in particular no division by zero / negative weighting.
  EXPECT_DOUBLE_EQ(t.time_weighted_mean(seconds(5)), 0.0);
  EXPECT_DOUBLE_EQ(t.time_weighted_mean(seconds(2)), 0.0);
}

TEST(Timeline, HorizonBeforeFirstPointIsZero) {
  metrics::Timeline t("x");
  t.record(seconds(10), 3.0);
  t.record(seconds(20), 1.0);
  EXPECT_DOUBLE_EQ(t.time_weighted_mean(seconds(8)), 0.0);
  // Horizon inside the series integrates only the covered prefix.
  EXPECT_DOUBLE_EQ(t.time_weighted_mean(seconds(15)), 3.0);
}

TEST(Timeline, SingleSampleRendersNoteNotBar) {
  metrics::Timeline t("pipes");
  t.record(seconds(5), 4.0);
  const std::string out = t.render_ascii(20);
  EXPECT_NE(out.find("single sample"), std::string::npos);
  // No fake full-width bar claiming the level held over a span.
  EXPECT_EQ(out.find("####"), std::string::npos);
}

TEST(Timeline, DuplicateTimestampsKeepLastValue) {
  metrics::Timeline t("x");
  t.record(seconds(1), 2.0);
  t.record(seconds(1), 6.0);  // same instant: later sample supersedes
  EXPECT_DOUBLE_EQ(t.time_weighted_mean(seconds(3)), 6.0);
  EXPECT_NE(t.render_ascii(20).find("single sample"), std::string::npos);
}

TEST(Harness, TwoRackScenarioUnlimitedMeansNoThrottle) {
  harness::Scenario scenario = harness::two_rack_scenario(
      "t", [](std::uint64_t seed) { return cluster::small_cluster(seed); },
      kUnlimitedBandwidth, kMiB);
  cluster::Cluster cluster(scenario.make_spec(1));
  scenario.prepare(cluster);
  EXPECT_FALSE(cluster.network().cross_rack_throttle().has_value());
}

}  // namespace
}  // namespace smarth
