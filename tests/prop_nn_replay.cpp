// Property: the edit log is a complete journal of the durable namespace.
// Replaying fsimage + edit-log tail into a fresh namenode reconstructs
// files, blocks, leases, in-flight lease recoveries and the durable salvage
// counters bit-for-bit, after arbitrary histories — multi-protocol uploads,
// writer crashes with lease recovery, quarantined replicas, and namenode
// restarts mid-history (whose own replay must not re-journal).
#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "faults/fault_injector.hpp"
#include "hdfs/edit_log.hpp"
#include "hdfs/fsimage.hpp"
#include "hdfs/namenode.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

/// Drives the cluster until `done` holds or `span` elapses.
template <typename Pred>
bool drive_until(Cluster& cluster, SimDuration span, Pred done) {
  const SimTime deadline = cluster.sim().now() + span;
  while (cluster.sim().now() < deadline) {
    if (done()) return true;
    cluster.sim().run_until(cluster.sim().now() + milliseconds(250));
  }
  return done();
}

/// Replays `base` + the log tail past it into a brand-new namenode and
/// returns the image that namenode captures. No simulation time passes.
hdfs::NamenodeImage replayed_image(Cluster& cluster,
                                   const hdfs::NamenodeImage& base) {
  hdfs::Namenode fresh(cluster.sim(), cluster.network().topology(),
                       cluster.config(), cluster.namenode().node_id());
  fresh.restore_image(base);
  for (const hdfs::EditOp& op : cluster.edit_log().tail(base.last_txid)) {
    fresh.apply_edit(op);
  }
  return fresh.capture_image();
}

void expect_replay_equivalent(Cluster& cluster,
                              const hdfs::NamenodeImage& base) {
  const hdfs::NamenodeImage live = cluster.namenode().capture_image();
  const hdfs::NamenodeImage replayed = replayed_image(cluster, base);
  EXPECT_TRUE(live == replayed)
      << "live:\n" << live.to_json() << "\nreplayed:\n" << replayed.to_json();
}

cluster::ClusterSpec replay_spec(std::uint64_t seed) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 8 * kMiB;
  spec.hdfs.lease_soft_limit = seconds(4);
  spec.hdfs.lease_hard_limit = seconds(8);
  spec.hdfs.lease_monitor_interval = seconds(1);
  // Full-log replay: nothing may be truncated away under the test.
  spec.hdfs.checkpoint_interval = 0;
  return spec;
}

// Clean histories across seeds, protocols and sizes: every op type on the
// happy path (create / addBlock / updateTargets / complete / lease renewals).
TEST(NamenodeReplay, CleanUploadsReplayBitForBit) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Cluster cluster(replay_spec(seed));
    const Protocol protocol =
        (seed % 2 == 0) ? Protocol::kHdfs : Protocol::kSmarth;
    const Bytes size = static_cast<Bytes>(16 + 8 * seed) * kMiB;
    const hdfs::StreamStats a =
        cluster.run_upload("/a", size, protocol);
    ASSERT_FALSE(a.failed) << "seed " << seed << ": " << a.failure_reason;
    const hdfs::StreamStats b =
        cluster.run_upload("/b", 16 * kMiB,
                           protocol == Protocol::kHdfs ? Protocol::kSmarth
                                                       : Protocol::kHdfs);
    ASSERT_FALSE(b.failed) << "seed " << seed << ": " << b.failure_reason;
    expect_replay_equivalent(cluster, hdfs::NamenodeImage{});
  }
}

// A writer crash mid-upload exercises the recovery op family
// (kLeaseRecoveryStart / kUcAttempt / kCommitBlockSync / kTruncateBlocks /
// kCloseRecovered) — including captures taken *during* the recovery, while
// the pending set is partially drained.
TEST(NamenodeReplay, LeaseRecoveryHistoryReplaysBitForBit) {
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    Cluster cluster(replay_spec(seed));
    // Slow the pipeline down so the writer crash lands mid-upload.
    cluster.throttle_cross_rack(Bandwidth::mbps(60));
    std::optional<hdfs::StreamStats> stats;
    cluster.upload("/crash", 48 * kMiB, Protocol::kSmarth,
                   [&stats](const hdfs::StreamStats& s) { stats = s; });
    cluster.crash_client_at(0, seconds(2));
    ASSERT_TRUE(drive_until(cluster, seconds(30), [&] {
      return stats.has_value() &&
             cluster.namenode().lease_expiries() > 0;
    })) << "seed " << seed << ": recovery never started";
    // Mid-recovery snapshot: recovering flag, pending UC blocks, attempts.
    expect_replay_equivalent(cluster, hdfs::NamenodeImage{});

    ASSERT_TRUE(drive_until(cluster, seconds(60), [&] {
      const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/crash");
      return entry != nullptr && entry->state == hdfs::FileState::kClosed;
    })) << "seed " << seed << ": recovery never finished";
    // Post-recovery snapshot: closed at a salvaged prefix, counters settled.
    expect_replay_equivalent(cluster, hdfs::NamenodeImage{});
  }
}

// Quarantined replicas (kQuarantine) are durable; a rotted replica found by
// a verified read must survive replay as a condemned entry.
TEST(NamenodeReplay, QuarantineReplaysBitForBit) {
  cluster::ClusterSpec spec = replay_spec(21);
  Cluster cluster(spec);
  faults::FaultInjector injector(cluster, /*chaos_seed=*/9);
  const hdfs::StreamStats up =
      cluster.run_upload("/rot", 24 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(up.failed) << up.failure_reason;
  injector.bitrot(0, cluster.sim().now() + seconds(1));
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
  const hdfs::ReadStats read = cluster.run_download("/rot");
  ASSERT_FALSE(read.failed) << read.failure_reason;
  ASSERT_GE(cluster.namenode().bad_replica_reports(), 1u);
  expect_replay_equivalent(cluster, hdfs::NamenodeImage{});
}

// Checkpoint + tail: restoring from a mid-history fsimage and replaying only
// the suffix must land on the same state as replaying everything.
TEST(NamenodeReplay, CheckpointPlusTailEqualsFullReplay) {
  cluster::ClusterSpec spec = replay_spec(31);
  spec.hdfs.checkpoint_interval = seconds(2);
  Cluster cluster(spec);
  const hdfs::StreamStats a =
      cluster.run_upload("/c1", 40 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(a.failed) << a.failure_reason;
  const hdfs::StreamStats b =
      cluster.run_upload("/c2", 24 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(b.failed) << b.failure_reason;
  ASSERT_GE(cluster.checkpointer().checkpoints(), 1u);
  ASSERT_GT(cluster.checkpointer().latest().last_txid, 0);
  expect_replay_equivalent(cluster, cluster.checkpointer().latest());
}

// A live restart in the middle of the history must not corrupt the journal:
// the restart's own replay re-executes mutation helpers, and none of them
// may re-journal (the log would double-apply on the next replay).
TEST(NamenodeReplay, HistoryContainingRestartReplaysBitForBit) {
  Cluster cluster(replay_spec(41));
  // Slow the pipeline down so the outage lands mid-upload.
  cluster.throttle_cross_rack(Bandwidth::mbps(60));
  std::optional<hdfs::StreamStats> stats;
  cluster.upload("/thru", 48 * kMiB, Protocol::kHdfs,
                 [&stats](const hdfs::StreamStats& s) { stats = s; });
  cluster.crash_namenode_at(seconds(2));
  cluster.restart_namenode_at(seconds(4));
  ASSERT_TRUE(drive_until(cluster, seconds(120),
                          [&stats] { return stats.has_value(); }));
  ASSERT_FALSE(stats->failed) << stats->failure_reason;
  EXPECT_EQ(cluster.namenode().restarts(), 1u);
  // Heartbeats renew leases continuously after the restart, so the live
  // lease stamps (reset at restore, renewed since) converge with replay's.
  expect_replay_equivalent(cluster, hdfs::NamenodeImage{});
}

// Truncation safety: asking for a tail below the truncation point is a
// programming error and must fail loudly, never silently replay a hole.
TEST(NamenodeReplay, TruncatedTailIsRefused) {
  hdfs::EditLog log;
  for (int i = 0; i < 5; ++i) {
    hdfs::EditOp op;
    op.type = hdfs::EditOpType::kLeaseRenew;
    log.append(std::move(op));
  }
  log.truncate_through(3);
  EXPECT_EQ(log.tail(3).size(), 2u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.appended(), 5u);
  EXPECT_THROW(log.tail(1), std::logic_error);
}

}  // namespace
}  // namespace smarth
