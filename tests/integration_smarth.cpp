// End-to-end tests of the SMARTH multi-pipeline protocol: FNFA-driven block
// advancement, pipeline concurrency and its cap, speed records reaching the
// namenode, the optimizers steering placement, and the headline property —
// SMARTH beating baseline HDFS when a pipeline hop is slow.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "hdfs/namenode.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

cluster::ClusterSpec small_spec(std::uint64_t seed = 42) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 4 * kMiB;
  return spec;
}

TEST(UploadSmarth, CompletesAndReplicates) {
  Cluster cluster(small_spec());
  const auto stats =
      cluster.run_upload("/data/a.bin", 12 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  EXPECT_EQ(stats.blocks, 3);
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
  EXPECT_TRUE(cluster.file_fully_replicated("/data/a.bin"));
  EXPECT_EQ(cluster.total_finalized_replica_bytes(), 3 * 12 * kMiB);
}

TEST(UploadSmarth, PipelinesOverlapUnderThrottle) {
  Cluster cluster(small_spec());
  // Slow cross-rack replication makes old pipelines drain slowly while the
  // client keeps streaming new blocks: concurrency must exceed 1.
  cluster.throttle_cross_rack(Bandwidth::mbps(20));
  const auto stats =
      cluster.run_upload("/data/a.bin", 24 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed);
  EXPECT_GT(stats.max_concurrent_pipelines, 1);
}

TEST(UploadSmarth, PipelineCapRespected) {
  Cluster cluster(small_spec());
  cluster.throttle_cross_rack(Bandwidth::mbps(10));
  const auto stats =
      cluster.run_upload("/data/a.bin", 48 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed);
  // 9 datanodes / replication 3 = at most 3 concurrent pipelines.
  EXPECT_LE(stats.max_concurrent_pipelines, 3);
}

TEST(UploadSmarth, StagingNeverOverflowsWithGuard) {
  Cluster cluster(small_spec());
  cluster.mutable_config().staging_buffer_bytes = 4 * kMiB;  // = block size
  cluster.throttle_cross_rack(Bandwidth::mbps(10));
  const auto stats =
      cluster.run_upload("/data/a.bin", 24 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed);
  const ClientId client = cluster.client().id();
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    EXPECT_EQ(cluster.datanode(i).staging_overflows(client), 0u)
        << "datanode " << i;
    EXPECT_LE(cluster.datanode(i).staging_high_water(client), 4 * kMiB);
  }
}

TEST(UploadSmarth, FnfaCountMatchesBlocks) {
  Cluster cluster(small_spec());
  const auto stats =
      cluster.run_upload("/data/a.bin", 16 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed);
  std::uint64_t fnfa_total = 0;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    fnfa_total += cluster.datanode(i).fnfa_sent();
  }
  EXPECT_EQ(fnfa_total, 4u);  // one FNFA per block
}

TEST(UploadSmarth, SpeedRecordsReachNamenode) {
  Cluster cluster(small_spec());
  const auto stats =
      cluster.run_upload("/data/big.bin", 40 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed);
  EXPECT_TRUE(cluster.speed_tracker().has_records());
  // Heartbeats every 3 s carry the tracker's records; give one a chance to
  // fire after the upload finished.
  cluster.sim().run_until(cluster.sim().now() +
                          cluster.config().heartbeat_interval + seconds(1));
  EXPECT_TRUE(
      cluster.namenode().speed_board().has_records(cluster.client().id()));
}

TEST(UploadSmarth, GlobalOptimizerAvoidsSlowFirstNode) {
  cluster::ClusterSpec spec = small_spec();
  spec.hdfs.smarth_local_opt = false;  // isolate the global optimizer
  Cluster cluster(spec);
  // Node 0 is crippled; after warm-up the namenode should stop handing it
  // out as a first datanode.
  cluster.throttle_datanode(0, Bandwidth::mbps(5));
  const auto stats =
      cluster.run_upload("/data/a.bin", 64 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed);
  // Count how often the slow node ended up first in the expected pipeline.
  const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/data/a.bin");
  ASSERT_NE(entry, nullptr);
  int slow_first_late = 0;
  const std::size_t blocks = entry->blocks.size();
  for (std::size_t i = blocks / 2; i < blocks; ++i) {
    const hdfs::BlockRecord* record =
        cluster.namenode().block(entry->blocks[i]);
    ASSERT_NE(record, nullptr);
    if (record->expected_targets[0] == cluster.datanode_id(0)) {
      ++slow_first_late;
    }
  }
  // In the second half of the upload the optimizer has speed records; the
  // slow node must be rare (random policy would give it ~1/9 of the slots).
  EXPECT_LE(slow_first_late, 1);
}

TEST(UploadSmarth, BeatsHdfsUnderCrossRackThrottle) {
  cluster::ClusterSpec spec = small_spec();
  Cluster hdfs_cluster(spec);
  hdfs_cluster.throttle_cross_rack(Bandwidth::mbps(20));
  const auto hdfs_stats =
      hdfs_cluster.run_upload("/data/a.bin", 32 * kMiB, Protocol::kHdfs);

  Cluster smarth_cluster(spec);
  smarth_cluster.throttle_cross_rack(Bandwidth::mbps(20));
  const auto smarth_stats =
      smarth_cluster.run_upload("/data/a.bin", 32 * kMiB, Protocol::kSmarth);

  ASSERT_FALSE(hdfs_stats.failed);
  ASSERT_FALSE(smarth_stats.failed);
  // The headline result: multi-pipeline hides the slow cross-rack hop.
  EXPECT_LT(smarth_stats.elapsed(), hdfs_stats.elapsed());
}

TEST(UploadSmarth, ParityOnHealthyHomogeneousCluster) {
  cluster::ClusterSpec spec = small_spec();
  Cluster hdfs_cluster(spec);
  const auto hdfs_stats =
      hdfs_cluster.run_upload("/data/a.bin", 16 * kMiB, Protocol::kHdfs);
  Cluster smarth_cluster(spec);
  const auto smarth_stats =
      smarth_cluster.run_upload("/data/a.bin", 16 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(hdfs_stats.failed);
  ASSERT_FALSE(smarth_stats.failed);
  // Paper Figs. 5(a,c,e): no big gain without network asymmetry. Allow 30%.
  const double ratio = static_cast<double>(hdfs_stats.elapsed()) /
                       static_cast<double>(smarth_stats.elapsed());
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST(UploadSmarth, DeterministicAcrossRuns) {
  Cluster a(small_spec(9));
  Cluster b(small_spec(9));
  const auto sa = a.run_upload("/x", 12 * kMiB, Protocol::kSmarth);
  const auto sb = b.run_upload("/x", 12 * kMiB, Protocol::kSmarth);
  EXPECT_EQ(sa.elapsed(), sb.elapsed());
  EXPECT_EQ(a.sim().events_executed(), b.sim().events_executed());
}

TEST(UploadSmarth, MultipleSequentialFiles) {
  Cluster cluster(small_spec());
  const auto s1 = cluster.run_upload("/f1", 8 * kMiB, Protocol::kSmarth);
  const auto s2 = cluster.run_upload("/f2", 8 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(s1.failed);
  ASSERT_FALSE(s2.failed);
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
  EXPECT_TRUE(cluster.file_fully_replicated("/f1"));
  EXPECT_TRUE(cluster.file_fully_replicated("/f2"));
}

}  // namespace
}  // namespace smarth
