// Rack-partition fault tests: when the inter-switch link dies, heartbeats,
// ACKs and RPCs across it all vanish. Writers must recover onto the
// reachable rack, readers must fail over to local replicas, and healing the
// partition must restore normal behaviour (including re-replication).
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "hdfs/namenode.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

cluster::ClusterSpec small_spec(std::uint64_t seed = 42) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 4 * kMiB;
  spec.hdfs.ack_timeout = seconds(2);
  spec.hdfs.datanode_dead_interval = seconds(8);
  return spec;
}

TEST(Partition, MessagesDroppedAcrossSeveredRacks) {
  Cluster cluster(small_spec());
  cluster.network().set_rack_partition("/rack0", "/rack1", true);
  bool delivered = false;
  // dn0 is on rack0, dn8 on rack1 (5/4 split).
  cluster.network().send(cluster.datanode_id(0), cluster.datanode_id(8), kKiB,
                         [&] { delivered = true; });
  cluster.sim().run_until(seconds(1));
  EXPECT_FALSE(delivered);
  EXPECT_GE(cluster.network().messages_dropped(), 1u);
  // Same-rack traffic is unaffected.
  cluster.network().send(cluster.datanode_id(0), cluster.datanode_id(1), kKiB,
                         [&] { delivered = true; });
  cluster.sim().run_until(cluster.sim().now() + seconds(1));
  EXPECT_TRUE(delivered);
}

TEST(Partition, HealingRestoresDelivery) {
  Cluster cluster(small_spec());
  cluster.network().set_rack_partition("/rack0", "/rack1", true);
  EXPECT_TRUE(cluster.network().partitioned(cluster.datanode_id(0),
                                            cluster.datanode_id(8)));
  cluster.network().set_rack_partition("/rack0", "/rack1", false);
  EXPECT_FALSE(cluster.network().partitioned(cluster.datanode_id(0),
                                             cluster.datanode_id(8)));
  bool delivered = false;
  cluster.network().send(cluster.datanode_id(0), cluster.datanode_id(8), kKiB,
                         [&] { delivered = true; });
  cluster.sim().run_until(seconds(1));
  EXPECT_TRUE(delivered);
}

TEST(Partition, RemoteRackMarkedDeadViaMissedHeartbeats) {
  // The namenode sits on rack0; partitioned rack1 nodes stop heartbeating
  // and fall out of the alive set — an emergent consequence, not special
  // cased anywhere.
  Cluster cluster(small_spec());
  cluster.network().set_rack_partition("/rack0", "/rack1", true);
  cluster.sim().run_until(cluster.config().datanode_dead_interval +
                          seconds(5));
  const auto& topo = cluster.network().topology();
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    const bool same_rack =
        topo.same_rack(cluster.datanode_id(i), cluster.namenode().node_id());
    EXPECT_EQ(cluster.namenode().is_alive(cluster.datanode_id(i)), same_rack)
        << "datanode " << i;
  }
}

TEST(Partition, WriteDuringPartitionCompletesOnLocalRack) {
  // Sever the racks before the upload: the namenode only sees rack0, so the
  // whole write lands there (the single-rack fallback) and still succeeds.
  Cluster cluster(small_spec());
  cluster.network().set_rack_partition("/rack0", "/rack1", true);
  cluster.sim().run_until(cluster.config().datanode_dead_interval +
                          seconds(5));
  const auto stats =
      cluster.run_upload("/f", 12 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
  EXPECT_TRUE(cluster.file_fully_replicated("/f"));
  const auto& topo = cluster.network().topology();
  const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/f");
  for (BlockId block : entry->blocks) {
    for (NodeId target :
         cluster.namenode().block(block)->expected_targets) {
      EXPECT_EQ(topo.rack_of(target), "/rack0");
    }
  }
}

TEST(Partition, MidUploadPartitionRecovers) {
  // Partition strikes mid-upload: pipelines crossing the cut stall, the
  // writer recovers onto reachable nodes, and the upload finishes.
  for (Protocol protocol : {Protocol::kHdfs, Protocol::kSmarth}) {
    Cluster cluster(small_spec());
    // Strike while pipelines are guaranteed to still be replicating across
    // the cut (a 64 MiB SMARTH upload outlives t=0.5 s comfortably).
    cluster.sim().schedule_at(milliseconds(500), [&cluster] {
      cluster.network().set_rack_partition("/rack0", "/rack1", true);
    });
    hdfs::StreamStats stats;
    bool done = false;
    cluster.upload("/f", 64 * kMiB, protocol, [&](const hdfs::StreamStats& s) {
      stats = s;
      done = true;
    });
    while (!done) {
      ASSERT_TRUE(
          cluster.sim().run_until(cluster.sim().now() + milliseconds(250)));
      ASSERT_LT(cluster.sim().now(), seconds(10'000));
    }
    ASSERT_FALSE(stats.failed)
        << cluster::protocol_name(protocol) << ": " << stats.failure_reason;
    EXPECT_GE(stats.recoveries, 1) << cluster::protocol_name(protocol);
  }
}

TEST(Partition, ReaderFailsOverToLocalReplica) {
  Cluster cluster(small_spec());
  const auto upload = cluster.run_upload("/f", 8 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(upload.failed);
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
  // Sever the racks; the client is on rack0 and every block has a rack0
  // replica (rack-aware placement), so reads still succeed.
  cluster.network().set_rack_partition("/rack0", "/rack1", true);
  const auto read = cluster.run_download("/f");
  ASSERT_FALSE(read.failed) << read.failure_reason;
  EXPECT_EQ(read.bytes_read, 8 * kMiB);
}

TEST(Partition, RereplicationAfterHealLosesNothing) {
  Cluster cluster(small_spec());
  cluster.enable_rereplication(seconds(2));
  const auto upload = cluster.run_upload("/f", 8 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(upload.failed);
  cluster.sim().run_until(cluster.sim().now() + seconds(2));

  // Partition long enough for rack1 to be declared dead: the monitor makes
  // extra rack0 copies of blocks whose replicas were cut off. The window
  // covers the 60 s in-flight-copy expiry, since a copy scheduled toward a
  // node that was partitioned a moment earlier is silently lost and retried.
  cluster.network().set_rack_partition("/rack0", "/rack1", true);
  cluster.sim().run_until(cluster.sim().now() +
                          cluster.config().datanode_dead_interval +
                          seconds(90));
  EXPECT_TRUE(cluster.namenode().under_replicated_blocks().empty());

  // Heal: rack1 nodes heartbeat again; nothing is lost and reads work from
  // anywhere.
  cluster.network().set_rack_partition("/rack0", "/rack1", false);
  cluster.sim().run_until(cluster.sim().now() + seconds(10));
  const auto read = cluster.run_download("/f");
  ASSERT_FALSE(read.failed);
  EXPECT_EQ(read.bytes_read, 8 * kMiB);
}

}  // namespace
}  // namespace smarth
