// Unit tests of the DfsClient facade: create() RPC semantics and the
// client-side heartbeat that piggybacks speed records (paper §III-B).
#include "hdfs/dfs_client.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "rpc/rpc_bus.hpp"
#include "sim/simulation.hpp"

namespace smarth::hdfs {
namespace {

class DfsClientTest : public ::testing::Test {
 protected:
  DfsClientTest() : sim_(1), net_(sim_) {
    nn_node_ = net_.add_node("nn", "/r0", Bandwidth::mbps(1000));
    client_node_ = net_.add_node("client", "/r0", Bandwidth::mbps(1000));
    dn_ = net_.add_node("dn0", "/r0", Bandwidth::mbps(1000));
    namenode_ = std::make_unique<Namenode>(sim_, net_.topology(), config_,
                                           nn_node_);
    namenode_->register_datanode(dn_);
    client_ = std::make_unique<DfsClient>(sim_, rpc_, *namenode_, config_,
                                          ClientId{0}, client_node_);
  }

  sim::Simulation sim_;
  net::Network net_;
  HdfsConfig config_;
  rpc::RpcBus rpc_{net_};
  NodeId nn_node_, client_node_, dn_;
  std::unique_ptr<Namenode> namenode_;
  std::unique_ptr<DfsClient> client_;
};

TEST_F(DfsClientTest, CreateFileRoundTrip) {
  std::optional<Result<FileId>> result;
  client_->create_file("/a", [&](Result<FileId> r) { result = std::move(r); });
  sim_.run_until(seconds(1));
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->ok());
  EXPECT_NE(namenode_->file_by_path("/a"), nullptr);
}

TEST_F(DfsClientTest, CreatePropagatesNamenodeErrors) {
  namenode_->set_safe_mode(true);
  std::optional<Result<FileId>> result;
  client_->create_file("/a", [&](Result<FileId> r) { result = std::move(r); });
  sim_.run_until(seconds(1));
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->ok());
  EXPECT_EQ(result->error().code, "safe_mode");
}

TEST_F(DfsClientTest, HeartbeatCarriesSpeedRecords) {
  std::vector<SpeedRecord> to_report{
      SpeedRecord{dn_, Bandwidth::mbps(123), 0}};
  client_->start_heartbeat([&to_report] { return to_report; });
  sim_.run_until(2 * config_.heartbeat_interval + seconds(1));
  EXPECT_GE(client_->heartbeats_sent(), 1u);
  const auto speed = namenode_->speed_board().speed(ClientId{0}, dn_);
  ASSERT_TRUE(speed.has_value());
  EXPECT_DOUBLE_EQ(speed->mbps(), 123.0);
}

TEST_F(DfsClientTest, EmptyReportsSendPlainHeartbeat) {
  client_->start_heartbeat([] { return std::vector<SpeedRecord>{}; });
  sim_.run_until(2 * config_.heartbeat_interval + seconds(1));
  EXPECT_GE(client_->heartbeats_sent(), 1u);
  EXPECT_FALSE(namenode_->speed_board().has_records(ClientId{0}));
}

TEST_F(DfsClientTest, HeartbeatCadenceMatchesConfig) {
  client_->start_heartbeat(nullptr);
  sim_.run_until(10 * config_.heartbeat_interval + seconds(1));
  // Initial jitter spreads the first beat inside one interval; thereafter
  // one per interval.
  EXPECT_GE(client_->heartbeats_sent(), 9u);
  EXPECT_LE(client_->heartbeats_sent(), 11u);
}

TEST_F(DfsClientTest, StopHeartbeatQuiesces) {
  client_->start_heartbeat(nullptr);
  sim_.run_until(2 * config_.heartbeat_interval);
  const std::uint64_t sent = client_->heartbeats_sent();
  client_->stop_heartbeat();
  sim_.run_until(sim_.now() + 5 * config_.heartbeat_interval);
  EXPECT_EQ(client_->heartbeats_sent(), sent);
}

TEST_F(DfsClientTest, StartHeartbeatTwiceKeepsOneTask) {
  client_->start_heartbeat(nullptr);
  client_->start_heartbeat(nullptr);  // must not double-fire
  sim_.run_until(4 * config_.heartbeat_interval + seconds(1));
  EXPECT_LE(client_->heartbeats_sent(), 5u);
}

}  // namespace
}  // namespace smarth::hdfs
