#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/periodic_task.hpp"

namespace smarth::sim {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulation, SameTimeIsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulation, NegativeDelayClampsToNow) {
  Simulation sim;
  bool fired = false;
  sim.schedule_at(10, [&] {
    sim.schedule_after(-5, [&] { fired = true; });
  });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulation, SchedulingIntoThePastThrows) {
  Simulation sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::logic_error);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  EventHandle handle = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());  // double-cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelAfterFireIsNoop) {
  Simulation sim;
  EventHandle handle = sim.schedule_at(1, [] {});
  sim.run();
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  std::vector<SimTime> fired;
  for (SimTime t = 10; t <= 50; t += 10) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  EXPECT_TRUE(sim.run_until(30));
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20, 30}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_EQ(fired.size(), 5u);
}

TEST(Simulation, RunStepsBounded) {
  Simulation sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(sim.run_steps(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.run_steps(100), 6u);
}

TEST(Simulation, EventLimitThrows) {
  Simulation sim;
  sim.set_event_limit(100);
  // Self-perpetuating event chain.
  std::function<void()> loop = [&] { sim.schedule_after(1, loop); };
  sim.schedule_at(0, loop);
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulation, CountersTrackActivity) {
  Simulation sim;
  sim.schedule_at(1, [] {});
  sim.schedule_at(2, [] {});
  sim.run();
  EXPECT_EQ(sim.events_scheduled(), 2u);
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulation, RngIsSeedStable) {
  Simulation a(99);
  Simulation b(99);
  EXPECT_EQ(a.rng().next(), b.rng().next());
}

TEST(PeriodicTask, FiresAtFixedPeriod) {
  Simulation sim;
  std::vector<SimTime> fires;
  PeriodicTask task(sim, 100, [&] { fires.push_back(sim.now()); });
  task.start();
  // Stop strictly after the 10th fire; a stop scheduled exactly at t=1000
  // would run first (earlier insertion seq) and cancel that fire.
  sim.schedule_at(1050, [&] { task.stop(); });
  sim.run();
  ASSERT_EQ(fires.size(), 10u);
  for (std::size_t i = 0; i < fires.size(); ++i) {
    EXPECT_EQ(fires[i], static_cast<SimTime>((i + 1) * 100));
  }
}

TEST(PeriodicTask, InitialDelayOverride) {
  Simulation sim;
  std::vector<SimTime> fires;
  PeriodicTask task(sim, 100, [&] { fires.push_back(sim.now()); });
  task.start_with_delay(5);
  sim.schedule_at(300, [&] { task.stop(); });
  sim.run();
  EXPECT_EQ(fires, (std::vector<SimTime>{5, 105, 205}));
}

TEST(PeriodicTask, StopFromInsideCallback) {
  Simulation sim;
  int fires = 0;
  PeriodicTask task(sim, 10, [&] {
    if (++fires == 3) task.stop();
  });
  task.start();
  sim.run();
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, DestructorCancelsCleanly) {
  Simulation sim;
  int fires = 0;
  {
    PeriodicTask task(sim, 10, [&] { ++fires; });
    task.start();
    sim.run_until(35);
  }
  sim.run();  // must not crash or fire further
  EXPECT_EQ(fires, 3);
}

}  // namespace
}  // namespace smarth::sim
