// Unit tests of BlockRecovery (paper Alg. 3's core) against a hand-built
// mini cluster: survivor classification, sync-point computation and
// clamping, checksum-offender exclusion, replacement seeding, primary
// rotation, and the unreachable-replacement fallback.
#include "hdfs/recovery.hpp"

#include <gtest/gtest.h>

#include "hdfs/datanode.hpp"
#include "hdfs/transport.hpp"
#include "net/network.hpp"
#include "rpc/rpc_bus.hpp"
#include "sim/simulation.hpp"

namespace smarth::hdfs {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : sim_(1), net_(sim_) {
    config_.packet_payload = 64 * kKiB;
    config_.block_size = 8 * config_.packet_payload;
    nn_node_ = net_.add_node("nn", "/r0", Bandwidth::mbps(1000));
    client_node_ = net_.add_node("client", "/r0", Bandwidth::mbps(1000));
    for (int i = 0; i < 5; ++i) {
      dn_nodes_.push_back(net_.add_node("dn" + std::to_string(i),
                                        i < 3 ? "/r0" : "/r1",
                                        Bandwidth::mbps(1000)));
    }
    SinkResolver resolver;
    resolver.packet_sink = [this](NodeId node) -> PacketSink* {
      return datanode_of(node);
    };
    resolver.ack_sink = [](NodeId, PipelineId) -> AckSink* { return nullptr; };
    transport_ = std::make_unique<Transport>(net_, config_, resolver);
    namenode_ = std::make_unique<Namenode>(sim_, net_.topology(), config_,
                                           nn_node_);
    for (NodeId node : dn_nodes_) {
      auto dn = std::make_unique<Datanode>(sim_, *transport_, rpc_, *namenode_,
                                           config_, node);
      dn->set_peer_resolver(
          [this](NodeId peer) -> Datanode* { return datanode_of(peer); });
      dn->start();
      dns_.push_back(std::move(dn));
    }
    deps_ = std::make_unique<StreamDeps>(StreamDeps{
        sim_, *transport_, rpc_, *namenode_, config_, pipeline_ids_,
        [this](NodeId node) -> Datanode* { return datanode_of(node); }});
    deps_->quarantine = &quarantine_;
  }

  Datanode* datanode_of(NodeId node) {
    for (std::size_t i = 0; i < dn_nodes_.size(); ++i) {
      if (dn_nodes_[i] == node) return dns_[i].get();
    }
    return nullptr;
  }

  /// Gives datanode `i` an open replica with `packets` stored packets.
  void stage_replica(std::size_t i, BlockId block, int packets) {
    auto& store = const_cast<storage::BlockStore&>(dns_[i]->block_store());
    ASSERT_TRUE(store.create_replica(block).ok());
    ASSERT_TRUE(store.append(block, packets * config_.packet_payload).ok());
  }

  /// Runs a recovery over targets (by index) and returns the outcome.
  Result<RecoveryOutcome> run_recovery(BlockId block,
                                       std::vector<std::size_t> target_idx,
                                       int error_index = -1,
                                       Bytes durable_floor = 0) {
    std::vector<NodeId> targets;
    for (std::size_t i : target_idx) targets.push_back(dn_nodes_[i]);
    std::optional<Result<RecoveryOutcome>> result;
    // The namenode must consider the block allocated.
    auto file = namenode_->create("/f" + std::to_string(block.value()),
                                  ClientId{0});
    BlockRecovery recovery(
        *deps_, ClientId{0}, client_node_, PipelineId{99}, block,
        config_.block_size, durable_floor, targets, error_index,
        [&result](Result<RecoveryOutcome> r) { result = std::move(r); });
    recovery.run();
    while (!result.has_value()) {
      if (!sim_.run_until(sim_.now() + milliseconds(100))) break;
      if (sim_.now() > seconds(500)) break;
    }
    (void)file;
    return result.value();
  }

  sim::Simulation sim_;
  net::Network net_;
  HdfsConfig config_;
  rpc::RpcBus rpc_{net_};
  NodeId nn_node_, client_node_;
  std::vector<NodeId> dn_nodes_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<Namenode> namenode_;
  std::vector<std::unique_ptr<Datanode>> dns_;
  IdGenerator<PipelineId> pipeline_ids_;
  std::unique_ptr<StreamDeps> deps_;
  QuarantineList quarantine_{sim_, seconds(60)};
};

TEST_F(RecoveryTest, SyncsSurvivorsToMinimumLength) {
  const BlockId block{7};
  stage_replica(0, block, 5);
  stage_replica(1, block, 3);
  stage_replica(2, block, 4);
  const auto outcome = run_recovery(block, {0, 1, 2});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().sync_offset, 3 * config_.packet_payload);
  EXPECT_EQ(outcome.value().targets.size(), 3u);
  for (std::size_t i : {0u, 1u, 2u}) {
    EXPECT_EQ(dns_[i]->block_store().replica(block).value().bytes,
              3 * config_.packet_payload);
  }
}

TEST_F(RecoveryTest, StaleReplicaBelowDurableFloorIsReplaced) {
  // dn1 crashed and restarted mid-write, losing its in-progress replica. The
  // client only buffers packets from the durable floor onward, so a survivor
  // below the floor cannot resync — it must drop out (and be quarantined)
  // instead of dragging the sync offset to zero and wedging the stream.
  const auto file = namenode_->create("/stale", ClientId{0});
  ASSERT_TRUE(file.ok());
  const auto located =
      namenode_->add_block(file.value(), ClientId{0}, client_node_, {});
  ASSERT_TRUE(located.ok());
  const BlockId block = located.value().block;
  stage_replica(0, block, 6);
  stage_replica(1, block, 1);  // below the 4-packet floor: stale
  stage_replica(2, block, 5);
  const auto outcome = run_recovery(block, {0, 1, 2}, /*error_index=*/-1,
                                    /*durable_floor=*/4 *
                                        config_.packet_payload);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome.value().sync_offset, 4 * config_.packet_payload);
  for (NodeId target : outcome.value().targets) {
    EXPECT_NE(target, dn_nodes_[1]);
  }
  EXPECT_GE(outcome.value().quarantined, 1);
  EXPECT_TRUE(quarantine_.quarantined(dn_nodes_[1]));
}

TEST_F(RecoveryTest, DeadTargetReplacedAndSeeded) {
  // Replacement lookup goes through the namenode, so the block must be a
  // registered one (staged-only ids would get "block_not_found").
  const auto file = namenode_->create("/seeded", ClientId{0});
  ASSERT_TRUE(file.ok());
  const auto located =
      namenode_->add_block(file.value(), ClientId{0}, client_node_, {});
  ASSERT_TRUE(located.ok());
  const BlockId block = located.value().block;
  stage_replica(0, block, 4);
  stage_replica(1, block, 4);
  stage_replica(2, block, 4);
  dns_[2]->crash();
  const auto outcome = run_recovery(block, {0, 1, 2});
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.value().targets.size(), 3u);
  // Replacement is a fresh node (3 or 4) holding the synced prefix.
  const NodeId replacement = outcome.value().targets[2];
  EXPECT_TRUE(replacement == dn_nodes_[3] || replacement == dn_nodes_[4]);
  Datanode* dn = datanode_of(replacement);
  EXPECT_EQ(dn->block_store().replica(block).value().bytes,
            outcome.value().sync_offset);
}

TEST_F(RecoveryTest, ChecksumOffenderExcludedEvenThoughAlive) {
  const BlockId block{7};
  stage_replica(0, block, 4);
  stage_replica(1, block, 4);
  stage_replica(2, block, 4);
  const auto outcome = run_recovery(block, {0, 1, 2}, /*error_index=*/1);
  ASSERT_TRUE(outcome.ok());
  for (NodeId target : outcome.value().targets) {
    EXPECT_NE(target, dn_nodes_[1]);
  }
}

TEST_F(RecoveryTest, SyncClampedToLastPacketStart) {
  // All survivors hold the complete block; recovery must still leave the
  // final packet to retransmit so the rebuilt pipeline can finalize.
  const BlockId block{7};
  stage_replica(0, block, 8);
  stage_replica(1, block, 8);
  const auto outcome = run_recovery(block, {0, 1});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().sync_offset,
            config_.block_size - config_.packet_payload);
}

TEST_F(RecoveryTest, SurvivorWithoutReplicaResumesFromZero) {
  // dn1 never received the setup (its upstream died first): alive but no
  // replica. It stays in the pipeline and everyone syncs to zero.
  const BlockId block{7};
  stage_replica(0, block, 4);
  const auto outcome = run_recovery(block, {0, 1});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().sync_offset, 0);
  EXPECT_EQ(outcome.value().targets.size(), 2u);
  EXPECT_TRUE(dns_[1]->block_store().has_replica(block));
}

TEST_F(RecoveryTest, AllTargetsDeadFails) {
  const BlockId block{7};
  stage_replica(0, block, 4);
  stage_replica(1, block, 4);
  dns_[0]->crash();
  dns_[1]->crash();
  const auto outcome = run_recovery(block, {0, 1});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, "recovery_failed");
}

TEST_F(RecoveryTest, UnreachableReplacementDroppedNotFatal) {
  // Only dead nodes remain as replacement candidates behind a partition:
  // the prefix copy times out, the replacement is dropped, and recovery
  // still succeeds with the survivors (under-replicated, not failed).
  config_.replacement_transfer_timeout = seconds(2);
  const BlockId block{7};
  stage_replica(0, block, 4);
  stage_replica(1, block, 4);
  stage_replica(2, block, 4);
  dns_[2]->crash();
  // Partition r1 away AFTER the namenode may pick its nodes as replacements.
  net_.set_rack_partition("/r0", "/r1", true);
  const auto outcome = run_recovery(block, {0, 1, 2});
  ASSERT_TRUE(outcome.ok());
  // The replacement (a rack1 node) was unreachable, so only survivors
  // remain.
  EXPECT_EQ(outcome.value().targets.size(), 2u);
}

TEST_F(RecoveryTest, DeadTargetLandsInQuarantine) {
  const BlockId block{7};
  stage_replica(0, block, 4);
  stage_replica(1, block, 4);
  dns_[1]->crash();
  const auto outcome = run_recovery(block, {0, 1});
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome.value().quarantined, 1);
  EXPECT_TRUE(quarantine_.quarantined(dn_nodes_[1]));
  EXPECT_FALSE(quarantine_.quarantined(dn_nodes_[0]));
  ASSERT_FALSE(quarantine_.events().empty());
  EXPECT_EQ(quarantine_.events().front().node, dn_nodes_[1]);
}

TEST_F(RecoveryTest, QuarantineExpires) {
  const BlockId block{7};
  stage_replica(0, block, 4);
  dns_[1]->crash();
  ASSERT_TRUE(run_recovery(block, {0, 1}).ok());
  EXPECT_TRUE(quarantine_.quarantined(dn_nodes_[1]));
  sim_.run_until(sim_.now() + seconds(61));
  EXPECT_FALSE(quarantine_.quarantined(dn_nodes_[1]));
  EXPECT_TRUE(quarantine_.active().empty());
}

TEST_F(RecoveryTest, NoReplacementsAvailableMeansUnderReplicated) {
  // Every spare node is dead: getAdditionalDatanodes has nothing to offer
  // and recovery degrades gracefully to a shorter pipeline.
  config_.replication = 3;
  const auto file = namenode_->create("/under", ClientId{0});
  ASSERT_TRUE(file.ok());
  const auto located =
      namenode_->add_block(file.value(), ClientId{0}, client_node_, {});
  ASSERT_TRUE(located.ok());
  const BlockId block = located.value().block;
  stage_replica(0, block, 4);
  stage_replica(1, block, 4);
  stage_replica(2, block, 4);
  dns_[2]->crash();
  dns_[3]->crash();
  dns_[4]->crash();
  const auto outcome = run_recovery(block, {0, 1, 2});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().targets.size(), 2u);
  EXPECT_TRUE(outcome.value().under_replicated);
}

TEST_F(RecoveryTest, FullPipelineSurvivesIsNotUnderReplicated) {
  config_.replication = 3;
  const BlockId block{7};
  stage_replica(0, block, 4);
  stage_replica(1, block, 4);
  stage_replica(2, block, 4);
  const auto outcome = run_recovery(block, {0, 1, 2});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().targets.size(), 3u);
  EXPECT_FALSE(outcome.value().under_replicated);
}

TEST_F(RecoveryTest, RepeatedRecoveryOfSameBlockConverges) {
  // Two consecutive recoveries of one block (a replacement then fails too)
  // must both terminate and leave a consistent replica set.
  const auto file = namenode_->create("/twice", ClientId{0});
  ASSERT_TRUE(file.ok());
  const auto located =
      namenode_->add_block(file.value(), ClientId{0}, client_node_, {});
  ASSERT_TRUE(located.ok());
  const BlockId block = located.value().block;
  stage_replica(0, block, 4);
  stage_replica(1, block, 4);
  stage_replica(2, block, 4);
  dns_[2]->crash();
  const auto first = run_recovery(block, {0, 1, 2});
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().targets.size(), 3u);
  // The freshly seeded replacement dies as well; recover again off the new
  // target list.
  Datanode* replacement = datanode_of(first.value().targets[2]);
  replacement->crash();
  std::vector<std::size_t> idx;
  for (NodeId t : first.value().targets) {
    for (std::size_t i = 0; i < dn_nodes_.size(); ++i) {
      if (dn_nodes_[i] == t) idx.push_back(i);
    }
  }
  const auto second = run_recovery(block, idx);
  ASSERT_TRUE(second.ok());
  // Both dead nodes are excluded now; only dn0/dn1 plus at most the one
  // remaining healthy spare can serve.
  for (NodeId t : second.value().targets) {
    EXPECT_FALSE(datanode_of(t)->crashed());
  }
  EXPECT_GE(second.value().targets.size(), 2u);
}

// --- probe_replica_with_timeout edge cases ---------------------------------

TEST_F(RecoveryTest, ProbeCrashedNodeReportsDead) {
  dns_[0]->crash();
  std::optional<ReplicaProbeResult> result;
  probe_replica_with_timeout(*deps_, client_node_, dn_nodes_[0], BlockId{7},
                             [&result](ReplicaProbeResult r) { result = r; });
  sim_.run_until(sim_.now() + config_.probe_timeout + seconds(1));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->alive);
}

TEST_F(RecoveryTest, ProbeIsolatedNodeTimesOutExactlyOnce) {
  net_.set_node_isolated(dn_nodes_[0], true);
  int calls = 0;
  bool alive = true;
  probe_replica_with_timeout(*deps_, client_node_, dn_nodes_[0], BlockId{7},
                             [&](ReplicaProbeResult r) {
                               ++calls;
                               alive = r.alive;
                             });
  // Run far past the timeout: a late response must not fire the callback a
  // second time.
  sim_.run_until(sim_.now() + config_.probe_timeout * 4);
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(alive);
}

TEST_F(RecoveryTest, ProbeUnknownNodeReportsDeadImmediately) {
  std::optional<ReplicaProbeResult> result;
  // The client node resolves to no datanode.
  probe_replica_with_timeout(*deps_, client_node_, client_node_, BlockId{7},
                             [&result](ReplicaProbeResult r) { result = r; });
  sim_.run_until(sim_.now() + milliseconds(1));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->alive);
}

TEST_F(RecoveryTest, NamenodeLearnsNewTargets) {
  const BlockId block{7};
  stage_replica(0, block, 4);
  stage_replica(1, block, 4);
  // Register the block so update_block_targets has a record to update.
  auto file = namenode_->create("/reg", ClientId{0});
  ASSERT_TRUE(file.ok());
  const auto located =
      namenode_->add_block(file.value(), ClientId{0}, client_node_, {});
  ASSERT_TRUE(located.ok());
  const BlockId registered = located.value().block;
  stage_replica(3, registered, 4);
  stage_replica(4, registered, 4);
  const auto outcome = run_recovery(registered, {3, 4});
  ASSERT_TRUE(outcome.ok());
  sim_.run_until(sim_.now() + seconds(1));
  EXPECT_EQ(namenode_->block(registered)->expected_targets,
            outcome.value().targets);
}

}  // namespace
}  // namespace smarth::hdfs
