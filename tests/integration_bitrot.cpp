// End-to-end silent-corruption defense, under both protocols: rot fewer
// replicas than the replication factor and the read must deliver the exact
// bytes (never a corrupt one), fail over, report the bad replicas, and the
// re-replication monitor must restore full replication from a verified-good
// copy; rot every replica and the read must fail cleanly with the distinct
// all_replicas_corrupt error instead of serving bad bytes or looping.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "faults/fault_injector.hpp"
#include "hdfs/datanode.hpp"
#include "hdfs/namenode.hpp"
#include "workload/fault_plan.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

cluster::ClusterSpec bitrot_spec(std::uint64_t seed = 42) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 4 * kMiB;
  spec.hdfs.ack_timeout = seconds(2);
  return spec;
}

void upload_and_settle(Cluster& cluster, const std::string& path, Bytes size,
                       Protocol protocol) {
  const auto stats = cluster.run_upload(path, size, protocol);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
}

/// Datanode index holding `node`, or datanode_count() when unknown.
std::size_t index_of(const Cluster& cluster, NodeId node) {
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    if (cluster.datanode_id(i) == node) return i;
  }
  return cluster.datanode_count();
}

class BitrotTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(BitrotTest, ReadSurvivesRotReportsAndRereplicates) {
  const Bytes size = 8 * kMiB;
  Cluster cluster(bitrot_spec());
  cluster.enable_rereplication(seconds(2));
  upload_and_settle(cluster, "/data/a.bin", size, GetParam());
  ASSERT_TRUE(cluster.file_fully_replicated("/data/a.bin"));

  // Rot chunk 0 of the replica each block's read would be served from (the
  // first distance-sorted target): every block then hits corruption before
  // delivering a byte, the worst case for the failover path.
  const auto located = cluster.namenode().get_block_locations(
      "/data/a.bin", cluster.client_node());
  ASSERT_TRUE(located.ok());
  std::vector<std::pair<BlockId, std::size_t>> rotted;
  for (const hdfs::LocatedBlock& lb : located.value()) {
    ASSERT_FALSE(lb.targets.empty());
    const std::size_t victim = index_of(cluster, lb.targets.front());
    ASSERT_LT(victim, cluster.datanode_count());
    ASSERT_TRUE(cluster.datanode(victim).rot_replica_chunk(lb.block, 0).ok());
    rotted.emplace_back(lb.block, victim);
  }

  const auto read = cluster.run_download("/data/a.bin");
  ASSERT_FALSE(read.failed) << read.failure_reason;
  // Exact bytes, zero corrupt bytes delivered: a corrupt packet carries no
  // payload, so any delivered rot would break this count.
  EXPECT_EQ(read.bytes_read, size);
  EXPECT_GE(read.checksum_mismatches, static_cast<int>(rotted.size()));
  EXPECT_GE(read.failovers, read.checksum_mismatches);
  EXPECT_GE(read.bad_replica_reports, static_cast<int>(rotted.size()));

  // Quarantine, invalidation, and repair from a verified-good source: give
  // the monitor time, then every rotted holder must have dropped its copy
  // and the file must be back at full replication on clean nodes.
  cluster.sim().run_until(cluster.sim().now() + seconds(60));
  EXPECT_GE(cluster.namenode().bad_replica_reports(),
            static_cast<std::uint64_t>(rotted.size()));
  for (const auto& [block, victim] : rotted) {
    EXPECT_FALSE(cluster.datanode(victim).block_store().replica(block).ok())
        << block.to_string() << " still on datanode " << victim;
  }
  EXPECT_GE(cluster.namenode().rereplications_completed(),
            static_cast<std::uint64_t>(rotted.size()));
  EXPECT_TRUE(cluster.namenode().under_replicated_blocks().empty());
  EXPECT_TRUE(cluster.file_fully_replicated("/data/a.bin"));

  // No rotted chunk survives anywhere: a fresh read is mismatch-free.
  const auto clean = cluster.run_download("/data/a.bin");
  ASSERT_FALSE(clean.failed) << clean.failure_reason;
  EXPECT_EQ(clean.bytes_read, size);
  EXPECT_EQ(clean.checksum_mismatches, 0);
}

TEST_P(BitrotTest, AllReplicasRottedFailsCleanlyWithDistinctError) {
  const Bytes size = 4 * kMiB;
  Cluster cluster(bitrot_spec());
  upload_and_settle(cluster, "/data/a.bin", size, GetParam());

  // Rot chunk 0 of every replica of the first block.
  const hdfs::FileEntry* entry =
      cluster.namenode().file_by_path("/data/a.bin");
  ASSERT_NE(entry, nullptr);
  const BlockId block = entry->blocks.front();
  int rotted = 0;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    if (cluster.datanode(i).rot_replica_chunk(block, 0).ok()) ++rotted;
  }
  ASSERT_EQ(rotted, cluster.config().replication);

  const auto read = cluster.run_download("/data/a.bin");
  EXPECT_TRUE(read.failed);
  EXPECT_NE(read.failure_reason.find("all_replicas_corrupt"),
            std::string::npos)
      << read.failure_reason;
  // Never a corrupt byte: the stream aborts before delivering from the
  // rotted block.
  EXPECT_EQ(read.bytes_read, 0u);
  EXPECT_GE(read.checksum_mismatches, cluster.config().replication);

  // Once the namenode has quarantined every holder, a retry fails fast on
  // the namenode-side flag — still the same distinct error, no loop.
  cluster.sim().run_until(cluster.sim().now() + seconds(5));
  const auto retry = cluster.run_download("/data/a.bin");
  EXPECT_TRUE(retry.failed);
  EXPECT_NE(retry.failure_reason.find("all_replicas_corrupt"),
            std::string::npos)
      << retry.failure_reason;
}

TEST_P(BitrotTest, ScheduledPlanRotIsDetectedByScrub) {
  cluster::ClusterSpec spec = bitrot_spec();
  spec.hdfs.scanner_bytes_per_second = 64 * kMiB;
  Cluster cluster(spec);
  cluster.enable_rereplication(seconds(2));
  faults::FaultInjector injector(cluster, /*chaos_seed=*/7);

  upload_and_settle(cluster, "/data/a.bin", 8 * kMiB, GetParam());
  // Schedule rot on two nodes that actually hold finalized replicas (the
  // plan's events are at absolute times, still in the future here).
  workload::FaultPlan plan;
  SimDuration at = seconds(30);
  for (std::size_t i = 0; i < cluster.datanode_count() && plan.bitrots.size() < 2;
       ++i) {
    if (cluster.datanode(i).block_store().finalized_count() == 0) continue;
    plan.bitrot(i, at);
    at += seconds(1);
  }
  ASSERT_EQ(plan.bitrots.size(), 2u);
  plan.apply(injector);
  cluster.sim().run_until(seconds(90));

  EXPECT_EQ(injector.counts().bitrot_flips, 2u);
  std::uint64_t detected = 0;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    detected += cluster.datanode(i).scanner().rot_detected();
  }
  EXPECT_GE(detected, 2u);
  EXPECT_GE(cluster.namenode().bad_replica_reports(), 2u);
  // Scrub-driven repair restores full replication without any read.
  EXPECT_TRUE(cluster.namenode().under_replicated_blocks().empty());
  EXPECT_TRUE(cluster.file_fully_replicated("/data/a.bin"));
}

INSTANTIATE_TEST_SUITE_P(BothProtocols, BitrotTest,
                         ::testing::Values(Protocol::kHdfs,
                                           Protocol::kSmarth),
                         [](const ::testing::TestParamInfo<Protocol>& p) {
                           return p.param == Protocol::kHdfs ? "Hdfs"
                                                             : "Smarth";
                         });

}  // namespace
}  // namespace smarth
