// smarthsim — command-line driver for the simulator. Builds a cluster from
// flags, applies throttles and faults, runs one upload per requested
// protocol on fresh identical worlds, and prints a report (optionally with a
// pipeline-concurrency timeline and protocol-level logging).
//
//   smarthsim --cluster=medium --size-gb=8 --throttle-mbps=50
//   smarthsim --cluster=hetero --protocol=both --timeline
//   smarthsim --cluster=small --slow-nodes=2 --slow-mbps=50 --crash=3@30
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "common/flags.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "metrics/timeline.hpp"
#include "sim/periodic_task.hpp"
#include "workload/fault_plan.hpp"

using namespace smarth;

namespace {

cluster::ClusterSpec spec_from_flags(const FlagSet& flags) {
  const std::string name = flags.get("cluster");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed").value_or(42));
  cluster::ClusterSpec spec;
  if (name == "hetero" || name == "heterogeneous") {
    spec = cluster::heterogeneous_cluster(seed);
  } else {
    const auto datanodes = static_cast<std::size_t>(
        flags.get_int("datanodes").value_or(9));
    spec = cluster::homogeneous_cluster(cluster::instance_by_name(name),
                                        datanodes, seed);
  }
  if (const auto block_mb = flags.get_int("block-mb")) {
    spec.hdfs.block_size = *block_mb * kMiB;
  }
  if (const auto repl = flags.get_int("replication")) {
    spec.hdfs.replication = static_cast<int>(*repl);
  }
  return spec;
}

struct RunOutcome {
  hdfs::StreamStats stats;
  metrics::Timeline concurrency{"pipeline concurrency"};
  std::uint64_t events = 0;
};

RunOutcome run_once(const FlagSet& flags, cluster::Protocol protocol) {
  cluster::Cluster cluster(spec_from_flags(flags));

  if (const auto throttle = flags.get_double("throttle-mbps");
      throttle && *throttle > 0) {
    cluster.throttle_cross_rack(Bandwidth::mbps(*throttle));
  }
  const auto slow_nodes = flags.get_int("slow-nodes").value_or(0);
  const double slow_mbps = flags.get_double("slow-mbps").value_or(50);
  for (std::int64_t i = 0; i < slow_nodes; ++i) {
    cluster.throttle_datanode(static_cast<std::size_t>(i),
                              Bandwidth::mbps(slow_mbps));
  }
  if (flags.has("crash")) {
    // --crash=<datanode>@<seconds>
    const std::string crash = flags.get("crash");
    const auto at = crash.find('@');
    if (at != std::string::npos) {
      workload::FaultPlan plan;
      plan.crash(static_cast<std::size_t>(std::stol(crash.substr(0, at))),
                 seconds_f(std::stod(crash.substr(at + 1))));
      plan.apply(cluster);
    }
  }
  if (flags.get_bool("verbose")) {
    Logger::instance().set_level(LogLevel::kInfo);
    Logger::instance().set_time_source(
        [&cluster] { return cluster.sim().now(); });
  }

  RunOutcome outcome;
  const Bytes size =
      static_cast<Bytes>(flags.get_double("size-gb").value_or(1.0) *
                         static_cast<double>(kGiB));

  std::unique_ptr<sim::PeriodicTask> sampler;
  if (flags.get_bool("timeline")) {
    sampler = std::make_unique<sim::PeriodicTask>(
        cluster.sim(), seconds(1), [&cluster, &outcome] {
          const hdfs::OutputStreamBase* stream = cluster.latest_stream();
          outcome.concurrency.record(
              cluster.sim().now(),
              stream != nullptr && !stream->finished()
                  ? static_cast<double>(stream->active_pipeline_count())
                  : 0.0);
        });
    sampler->start_with_delay(0);
  }

  outcome.stats = cluster.run_upload("/data/cli.bin", size, protocol);
  outcome.events = cluster.sim().events_executed();
  if (sampler) sampler->stop();
  Logger::instance().set_level(LogLevel::kWarn);
  Logger::instance().set_time_source(nullptr);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("smarthsim");
  flags.declare("cluster", "small | medium | large | hetero", "small");
  flags.declare("datanodes", "datanode count for homogeneous clusters", "9");
  flags.declare("size-gb", "upload size in GiB (fractional ok)", "1");
  flags.declare("protocol", "hdfs | smarth | both", "both");
  flags.declare("throttle-mbps", "cross-rack throttle (0 = none)", "0");
  flags.declare("slow-nodes", "number of individually throttled datanodes",
                "0");
  flags.declare("slow-mbps", "bandwidth of the slow datanodes", "50");
  flags.declare("crash", "crash fault: <datanode>@<seconds>", "");
  flags.declare("block-mb", "HDFS block size in MiB", "64");
  flags.declare("replication", "replication factor", "3");
  flags.declare("seed", "simulation seed", "42");
  flags.declare_bool("timeline", "print a pipeline-concurrency timeline");
  flags.declare_bool("verbose", "protocol-level logging");
  flags.declare_bool("help", "show usage");

  if (const Status parsed = flags.parse(argc, argv); !parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.error().to_string().c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.get_bool("help")) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }

  const std::string protocol_choice = flags.get("protocol");
  std::vector<cluster::Protocol> protocols;
  if (protocol_choice == "hdfs" || protocol_choice == "both") {
    protocols.push_back(cluster::Protocol::kHdfs);
  }
  if (protocol_choice == "smarth" || protocol_choice == "both") {
    protocols.push_back(cluster::Protocol::kSmarth);
  }
  if (protocols.empty()) {
    std::fprintf(stderr, "unknown --protocol=%s\n", protocol_choice.c_str());
    return 2;
  }

  TextTable table({"protocol", "seconds", "throughput (Mbps)", "blocks",
                   "pipelines", "max concurrent", "recoveries", "events"});
  std::vector<double> seconds_by_protocol;
  for (const cluster::Protocol protocol : protocols) {
    const RunOutcome outcome = run_once(flags, protocol);
    if (outcome.stats.failed) {
      std::fprintf(stderr, "%s upload failed: %s\n",
                   cluster::protocol_name(protocol),
                   outcome.stats.failure_reason.c_str());
      return 1;
    }
    seconds_by_protocol.push_back(to_seconds(outcome.stats.elapsed()));
    table.add_row({cluster::protocol_name(protocol),
                   TextTable::num(to_seconds(outcome.stats.elapsed())),
                   TextTable::num(outcome.stats.throughput().mbps(), 1),
                   std::to_string(outcome.stats.blocks),
                   std::to_string(outcome.stats.pipelines_created),
                   std::to_string(outcome.stats.max_concurrent_pipelines),
                   std::to_string(outcome.stats.recoveries),
                   std::to_string(outcome.events)});
    if (flags.get_bool("timeline") && !outcome.concurrency.empty()) {
      std::printf("%s\n", outcome.concurrency.render_ascii().c_str());
    }
  }
  std::printf("%s", table.to_string().c_str());
  if (seconds_by_protocol.size() == 2) {
    std::printf("improvement: %.1f%%\n",
                (seconds_by_protocol[0] / seconds_by_protocol[1] - 1.0) *
                    100.0);
  }
  return 0;
}
