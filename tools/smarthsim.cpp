// smarthsim — command-line driver for the simulator. Builds a cluster from
// flags, applies throttles and faults, runs one upload per requested
// protocol on fresh identical worlds, and prints a report (optionally with a
// pipeline-concurrency timeline and protocol-level logging).
//
//   smarthsim --cluster=medium --size-gb=8 --throttle-mbps=50
//   smarthsim --cluster=hetero --protocol=both --timeline
//   smarthsim --cluster=small --slow-nodes=2 --slow-mbps=50 --crash=3@30
//   smarthsim --cluster=small --crash=3@10 --rejoin=3@25 --fail-slow=1@5-20@8
//   smarthsim --chaos-rates=crash=2,failslow=4,rpcloss=0.05 --chaos-seed=7
//   smarthsim --bitrot=0@40,1@45 --scan-mbps=16 --read-back
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "common/flags.hpp"
#include "harness/sweep.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "faults/fault_injector.hpp"
#include "metrics/report.hpp"
#include "metrics/timeline.hpp"
#include "sim/periodic_task.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/straggler.hpp"
#include "trace/trace_recorder.hpp"
#include "workload/fault_plan.hpp"
#include "workload/open_loop.hpp"

using namespace smarth;

namespace {

cluster::ClusterSpec spec_from_flags(const FlagSet& flags,
                                     std::optional<std::uint64_t> seed_override =
                                         std::nullopt) {
  const std::string name = flags.get("cluster");
  const std::uint64_t seed = seed_override.value_or(
      static_cast<std::uint64_t>(flags.get_int("seed").value_or(42)));
  cluster::ClusterSpec spec;
  if (name == "hetero" || name == "heterogeneous") {
    spec = cluster::heterogeneous_cluster(seed);
  } else {
    const auto datanodes = static_cast<std::size_t>(
        flags.get_int("datanodes").value_or(9));
    spec = cluster::homogeneous_cluster(cluster::instance_by_name(name),
                                        datanodes, seed);
  }
  if (const auto block_mb = flags.get_int("block-mb")) {
    spec.hdfs.block_size = *block_mb * kMiB;
  }
  if (const auto repl = flags.get_int("replication")) {
    spec.hdfs.replication = static_cast<int>(*repl);
  }
  if (const auto scan = flags.get_double("scan-mbps"); scan && *scan > 0) {
    spec.hdfs.scanner_bytes_per_second =
        static_cast<Bytes>(*scan * static_cast<double>(kMiB));
  }
  // --fidelity is validated in main() before any run.
  if (flags.get("fidelity") == "block") {
    spec.hdfs.fidelity = hdfs::DataFidelity::kBlock;
  }
  if (const auto tol = flags.get_double("fidelity-tolerance");
      tol && *tol > 0) {
    spec.hdfs.block_fidelity_tolerance = *tol;
  }
  // Gray-failure defenses (all default off; see HdfsConfig).
  if (flags.get_bool("hedged-reads")) spec.hdfs.hedged_reads = true;
  if (flags.get_bool("slow-evict")) spec.hdfs.slow_node_eviction = true;
  // Control-plane overload model (default off; see HdfsConfig). Admission
  // control implies the service model — shedding needs a queue to bound.
  if (flags.get_bool("nn-service-model")) spec.hdfs.nn_service_model = true;
  if (flags.get_bool("nn-admission-control")) {
    spec.hdfs.nn_service_model = true;
    spec.hdfs.nn_admission_control = true;
  }
  return spec;
}

struct RunOutcome {
  hdfs::StreamStats stats;
  std::optional<hdfs::ReadStats> read;
  metrics::Timeline concurrency{"pipeline concurrency"};
  metrics::FaultSummary summary;
  std::uint64_t events = 0;
  std::string editlog_json;  ///< filled when --editlog-out is set
};

/// Splits "a=1,b=2" into (key, value) pairs.
std::vector<std::pair<std::string, std::string>> parse_kv_list(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(start, comma - start);
    const std::size_t eq = item.find('=');
    if (eq != std::string::npos) {
      out.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    }
    start = comma + 1;
  }
  return out;
}

void write_file_or_die(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// A typo'd fault flag silently running a fault-free experiment is worse
/// than an abort: fail loudly instead.
[[noreturn]] void fault_flag_error(const std::string& flag,
                                   const std::string& detail) {
  std::fprintf(stderr, "malformed --%s: %s\n", flag.c_str(), detail.c_str());
  std::exit(2);
}

/// Parses --chaos-rates: crash=<per-min>,failslow=<per-min>,flap=<per-min>,
/// clientcrash=<per-min>,bitrot=<per-replica-hour>,nncrash=<per-min>,
/// rpcloss=<prob>,rpcdelay-ms=<ms>,rpcjitter-ms=<ms>,rejoin-s=<s>,
/// slowdur-s=<s>,slowfactor=<x>,flapdur-s=<s>,clientrejoin-s=<s>,
/// nnrestart-s=<s>,nnfailover=<0|1>.
faults::ChaosRates parse_chaos_rates(const std::string& text) {
  faults::ChaosRates rates;
  for (const auto& [key, value] : parse_kv_list(text)) {
    double v = 0;
    try {
      v = std::stod(value);
    } catch (const std::exception&) {
      fault_flag_error("chaos-rates",
                       "value for '" + key + "' is not a number: " + value);
    }
    if (key == "crash") rates.crash_per_minute = v;
    else if (key == "failslow") rates.fail_slow_per_minute = v;
    else if (key == "flap") rates.flap_per_minute = v;
    else if (key == "clientcrash") rates.client_crash_per_minute = v;
    else if (key == "bitrot") rates.bitrot_per_replica_hour = v;
    else if (key == "clientrejoin-s") rates.client_rejoin_delay = seconds_f(v);
    else if (key == "rpcloss") rates.rpc_loss = v;
    else if (key == "rpcdelay-ms") rates.rpc_delay_mean = milliseconds_f(v);
    else if (key == "rpcjitter-ms") rates.rpc_delay_jitter = milliseconds_f(v);
    else if (key == "rejoin-s") rates.rejoin_delay = seconds_f(v);
    else if (key == "slowdur-s") rates.fail_slow_duration = seconds_f(v);
    else if (key == "slowfactor" || key == "failslow-factor") {
      if (v <= 0) {
        fault_flag_error("chaos-rates",
                         "failslow-factor must be positive, got " + value);
      }
      rates.fail_slow_factor = v;
    }
    else if (key == "flapdur-s") rates.flap_duration = seconds_f(v);
    else if (key == "nncrash") rates.nn_crash_per_minute = v;
    else if (key == "nnrestart-s") rates.nn_restart_delay = seconds_f(v);
    else if (key == "nnfailover") rates.nn_failover = v != 0.0;
    else fault_flag_error("chaos-rates", "unknown key: " + key);
  }
  return rates;
}

/// Validated --fail-slow-factor: the first-class fail-slow severity knob.
/// When set it overrides the factor of --fail-slow windows and chaos
/// failslow events, so severity sweeps change one flag. Exits on <= 0.
std::optional<double> fail_slow_factor_flag(const FlagSet& flags) {
  if (!flags.has("fail-slow-factor")) return std::nullopt;
  const auto factor = flags.get_double("fail-slow-factor");
  if (!factor || *factor <= 0) {
    fault_flag_error("fail-slow-factor", "must be a positive number, got " +
                                             flags.get("fail-slow-factor"));
  }
  return factor;
}

/// Validated --sample-interval: the flight recorder's sampling cadence in
/// simulated seconds. Exits on non-positive values even when no
/// --timeseries-out consumes it this run (same eager policy as
/// --fail-slow-factor: a silently-ignored knob runs the wrong experiment).
SimDuration sample_interval_flag(const FlagSet& flags) {
  if (!flags.has("sample-interval")) return seconds(1);
  const auto interval = flags.get_double("sample-interval");
  if (!interval || *interval <= 0) {
    fault_flag_error("sample-interval",
                     "must be a positive number of seconds, got " +
                         flags.get("sample-interval"));
  }
  return seconds_f(*interval);
}

/// Parses the one-shot fault flags (--crash/--rejoin/--fail-slow/--flap/
/// --bitrot) into a FaultPlan. Exits loudly on malformed specs.
workload::FaultPlan plan_from_flags(const FlagSet& flags) {
  workload::FaultPlan plan;
  try {
    if (flags.has("crash")) {
      // --crash=<datanode>@<seconds>, optionally paired with --rejoin.
      const std::string crash = flags.get("crash");
      const auto at = crash.find('@');
      if (at == std::string::npos) {
        fault_flag_error("crash", "expected <datanode>@<seconds>, got " +
                                      crash);
      }
      const auto index =
          static_cast<std::size_t>(std::stol(crash.substr(0, at)));
      const SimDuration when = seconds_f(std::stod(crash.substr(at + 1)));
      SimDuration rejoin_at = 0;
      if (flags.has("rejoin")) {
        // --rejoin=<datanode>@<seconds>; must name the crashed node.
        const std::string rejoin = flags.get("rejoin");
        const auto rat = rejoin.find('@');
        if (rat == std::string::npos) {
          fault_flag_error("rejoin", "expected <datanode>@<seconds>, got " +
                                         rejoin);
        }
        if (static_cast<std::size_t>(std::stol(rejoin.substr(0, rat))) ==
            index) {
          rejoin_at = seconds_f(std::stod(rejoin.substr(rat + 1)));
        }
      }
      if (rejoin_at > when) {
        plan.crash_and_rejoin(index, when, rejoin_at);
      } else {
        plan.crash(index, when);
      }
    }
    if (flags.has("fail-slow")) {
      // --fail-slow=<datanode>@<from>-<until>[@<factor>]; --fail-slow-factor
      // supplies (or overrides) the severity, so sweeps vary one flag.
      const std::string fs = flags.get("fail-slow");
      const auto at = fs.find('@');
      const auto dash = fs.find('-', at);
      const auto at2 = fs.find('@', dash);
      if (at == std::string::npos || dash == std::string::npos) {
        fault_flag_error("fail-slow",
                         "expected <datanode>@<from>-<until>[@<factor>], "
                         "got " + fs);
      }
      const auto factor_flag = fail_slow_factor_flag(flags);
      double factor = 0;
      if (factor_flag) {
        factor = *factor_flag;
      } else if (at2 != std::string::npos) {
        factor = std::stod(fs.substr(at2 + 1));
      } else {
        fault_flag_error("fail-slow",
                         "no severity: append @<factor> or set "
                         "--fail-slow-factor");
      }
      if (factor <= 0) {
        fault_flag_error("fail-slow", "factor must be positive, got " + fs);
      }
      const auto until_len =
          at2 == std::string::npos ? std::string::npos : at2 - dash - 1;
      plan.fail_slow(
          static_cast<std::size_t>(std::stol(fs.substr(0, at))),
          seconds_f(std::stod(fs.substr(at + 1, dash - at - 1))),
          seconds_f(std::stod(fs.substr(dash + 1, until_len))), factor);
    }
    if (flags.has("flap")) {
      // --flap=<datanode>@<down>-<up>
      const std::string flap = flags.get("flap");
      const auto at = flap.find('@');
      const auto dash = flap.find('-', at);
      if (at == std::string::npos || dash == std::string::npos) {
        fault_flag_error("flap",
                         "expected <datanode>@<down>-<up>, got " + flap);
      }
      plan.flap(static_cast<std::size_t>(std::stol(flap.substr(0, at))),
                seconds_f(std::stod(flap.substr(at + 1, dash - at - 1))),
                seconds_f(std::stod(flap.substr(dash + 1))));
    }
    if (flags.has("bitrot")) {
      // --bitrot=<datanode>@<seconds>[,...]: one finalized chunk at rest
      // flips on that node at that time.
      const std::string spec = flags.get("bitrot");
      std::size_t start = 0;
      while (start < spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos) comma = spec.size();
        const std::string item = spec.substr(start, comma - start);
        const auto at = item.find('@');
        if (at == std::string::npos) {
          fault_flag_error("bitrot",
                           "expected <datanode>@<seconds>[,...], got " + item);
        }
        plan.bitrot(static_cast<std::size_t>(std::stol(item.substr(0, at))),
                    seconds_f(std::stod(item.substr(at + 1))));
        start = comma + 1;
      }
    }
  } catch (const std::logic_error&) {
    fault_flag_error("crash/rejoin/fail-slow/flap/bitrot",
                     "fault spec fields must be numeric");
  }
  return plan;
}

/// Folds the cluster-level robustness counters (RPC bus, namenode, datanode
/// scanners, injector) into `summary` after a run finishes.
void fold_cluster_counters(metrics::FaultSummary& summary,
                           cluster::Cluster& cluster,
                           const faults::FaultInjector& injector) {
  summary.fold_registry(metrics::global_registry());
  summary.rpc_calls_dropped = cluster.rpc().calls_dropped();
  summary.rpc_messages_lost = cluster.rpc().messages_lost();
  summary.rpc_messages_delayed = cluster.rpc().messages_delayed();
  summary.datanode_reregistrations = cluster.namenode().reregistrations();
  summary.under_replicated_blocks =
      cluster.namenode().under_replicated_blocks().size();
  summary.faults_injected = injector.counts().total();
  summary.lease_expiries = cluster.namenode().lease_expiries();
  summary.uc_blocks_recovered = cluster.namenode().uc_blocks_recovered();
  summary.bytes_salvaged = cluster.namenode().bytes_salvaged();
  summary.orphans_abandoned = cluster.namenode().orphans_abandoned();
  // The namenode count supersedes the per-read fold: it also sees reports
  // from block scanners and re-replication source verification.
  summary.bad_replica_reports =
      static_cast<int>(cluster.namenode().bad_replica_reports());
  summary.bitrot_flips = injector.counts().bitrot_flips;
  summary.nn_crashes = injector.counts().nn_crashes;
  summary.nn_restarts = injector.counts().nn_restarts;
  summary.nn_failovers = injector.counts().nn_failovers;
  summary.safe_mode_entries = cluster.namenode().safe_mode_entries();
  summary.safe_mode_exits = cluster.namenode().safe_mode_exits();
  summary.edit_ops_logged = cluster.edit_log().appended();
  summary.checkpoints = cluster.checkpointer().checkpoints();
  for (const SimDuration downtime : cluster.namenode_downtimes()) {
    summary.nn_downtime.add(to_seconds(downtime));
  }
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    const hdfs::Datanode& dn = cluster.datanode(i);
    summary.replicas_invalidated += dn.replicas_invalidated();
    summary.scrub_rot_detected += dn.scanner().rot_detected();
    summary.scrub_bytes_scanned += dn.scanner().bytes_scanned();
  }
}

/// Builds the open-loop workload config from flags. Values are validated in
/// main() before any run; defaults here match OpenLoopConfig except the
/// arrival rate, which scales with the tenant count when not given.
workload::OpenLoopConfig open_loop_config_from_flags(const FlagSet& flags) {
  workload::OpenLoopConfig cfg;
  cfg.clients =
      static_cast<int>(flags.get_int("clients").value_or(cfg.clients));
  cfg.arrival_rate = flags.get_double("arrival-rate")
                         .value_or(0.2 * static_cast<double>(cfg.clients));
  cfg.zipf_s = flags.get_double("zipf-s").value_or(cfg.zipf_s);
  if (const auto dur = flags.get_double("open-loop-duration")) {
    cfg.duration = seconds_f(*dur);
  }
  return cfg;
}

struct OpenLoopOutcome {
  workload::OpenLoopResult result;
  metrics::FaultSummary summary;
  std::uint64_t events = 0;
};

/// One open-loop run: fresh world, shared throttle/fault setup, the
/// multi-tenant arrival process instead of a single upload. `quiet` skips
/// process-global logger mutation (required on sweep worker threads).
OpenLoopOutcome run_open_loop_once(const FlagSet& flags,
                                   cluster::Protocol protocol, bool quiet,
                                   std::optional<std::uint64_t> seed_override =
                                       std::nullopt,
                                   std::optional<std::uint64_t> chaos_seed =
                                       std::nullopt) {
  metrics::global_registry().reset();
  if (metrics::flight_active()) {
    // Before the cluster exists: the constructor attaches the sampling task
    // to whichever run is current.
    metrics::flight_recorder()->begin_run(
        cluster::protocol_name(protocol),
        seed_override.value_or(
            static_cast<std::uint64_t>(flags.get_int("seed").value_or(42))));
  }
  cluster::Cluster cluster(spec_from_flags(flags, seed_override));
  faults::FaultInjector injector(
      cluster, chaos_seed.value_or(static_cast<std::uint64_t>(
                   flags.get_int("chaos-seed").value_or(1))));
  if (const auto throttle = flags.get_double("throttle-mbps");
      throttle && *throttle > 0) {
    cluster.throttle_cross_rack(Bandwidth::mbps(*throttle));
  }
  const auto slow_nodes = flags.get_int("slow-nodes").value_or(0);
  const double slow_mbps = flags.get_double("slow-mbps").value_or(50);
  for (std::int64_t i = 0; i < slow_nodes; ++i) {
    cluster.throttle_datanode(static_cast<std::size_t>(i),
                              Bandwidth::mbps(slow_mbps));
  }
  workload::FaultPlan plan = plan_from_flags(flags);
  if (!plan.empty()) plan.apply(injector);
  if (flags.has("chaos-rates")) {
    faults::ChaosRates rates = parse_chaos_rates(flags.get("chaos-rates"));
    if (const auto factor = fail_slow_factor_flag(flags)) {
      rates.fail_slow_factor = *factor;
    }
    if (rates.nn_failover) cluster.enable_standby();
    injector.start_chaos(rates);
  }
  if (!quiet) {
    LogLevel log_level = LogLevel::kWarn;
    bool log_level_chosen = false;
    if (flags.get_bool("verbose")) {
      log_level = LogLevel::kInfo;
      log_level_chosen = true;
    }
    if (const std::string level = flags.get("log-level"); !level.empty()) {
      log_level_chosen = parse_log_level(level, log_level);
    }
    if (log_level_chosen) {
      Logger::instance().set_level(log_level);
      Logger::instance().set_time_source(
          [&cluster] { return cluster.sim().now(); });
    }
  }

  OpenLoopOutcome outcome;
  workload::OpenLoopWorkload wl(protocol, open_loop_config_from_flags(flags));
  wl.set_job_observer([&outcome](const hdfs::StreamStats& s) {
    outcome.summary.fold(s);
  });
  outcome.result = wl.run(cluster);
  outcome.events = cluster.sim().events_executed();
  fold_cluster_counters(outcome.summary, cluster, injector);
  // While the cluster is alive: quiescence monitors read the live registry
  // and a firing's dump wants the pending-event summary.
  if (metrics::flight_active()) {
    metrics::flight_recorder()->finish_run(cluster.sim().now());
  }
  if (!quiet) {
    Logger::instance().set_level(LogLevel::kWarn);
    Logger::instance().set_time_source(nullptr);
  }
  return outcome;
}

RunOutcome run_once(const FlagSet& flags, cluster::Protocol protocol) {
  // Fresh metrics per protocol run. Must happen before the cluster exists:
  // datanodes cache registry references at construction and a later reset
  // would dangle them.
  metrics::global_registry().reset();
  if (trace::active()) {
    trace::recorder()->begin_run(cluster::protocol_name(protocol));
  }
  if (metrics::flight_active()) {
    metrics::flight_recorder()->begin_run(
        cluster::protocol_name(protocol),
        static_cast<std::uint64_t>(flags.get_int("seed").value_or(42)));
  }
  cluster::Cluster cluster(spec_from_flags(flags));
  if (trace::active()) {
    trace::recorder()->set_time_source(
        [&cluster] { return cluster.sim().now(); });
  }
  faults::FaultInjector injector(
      cluster,
      static_cast<std::uint64_t>(flags.get_int("chaos-seed").value_or(1)));

  if (const auto throttle = flags.get_double("throttle-mbps");
      throttle && *throttle > 0) {
    cluster.throttle_cross_rack(Bandwidth::mbps(*throttle));
  }
  const auto slow_nodes = flags.get_int("slow-nodes").value_or(0);
  const double slow_mbps = flags.get_double("slow-mbps").value_or(50);
  for (std::int64_t i = 0; i < slow_nodes; ++i) {
    cluster.throttle_datanode(static_cast<std::size_t>(i),
                              Bandwidth::mbps(slow_mbps));
  }
  workload::FaultPlan plan = plan_from_flags(flags);
  std::optional<SimTime> client_crash_at;
  if (flags.has("client-crash")) {
    // --client-crash=<seconds>: the writer host dies mid-upload; lease
    // recovery must close the file at its salvaged prefix.
    try {
      client_crash_at = seconds_f(std::stod(flags.get("client-crash")));
    } catch (const std::logic_error&) {
      fault_flag_error("client-crash", "expected <seconds>, got " +
                                           flags.get("client-crash"));
    }
    injector.crash_client(0, *client_crash_at);
  }
  std::optional<SimTime> nn_crash_at;
  SimDuration nn_outage = seconds(3);
  if (flags.has("nn-crash")) {
    // --nn-crash=<seconds>: the namenode dies mid-upload and recovery starts
    // after --nn-outage seconds — a cold restart from fsimage + edit-log
    // tail, or a warm standby promotion under --nn-failover.
    try {
      nn_crash_at = seconds_f(std::stod(flags.get("nn-crash")));
    } catch (const std::logic_error&) {
      fault_flag_error("nn-crash",
                       "expected <seconds>, got " + flags.get("nn-crash"));
    }
    if (const auto outage = flags.get_double("nn-outage"); outage) {
      if (*outage <= 0) fault_flag_error("nn-outage", "must be positive");
      nn_outage = seconds_f(*outage);
    }
    if (flags.get_bool("nn-failover")) {
      cluster.enable_standby();
      injector.crash_and_failover_namenode(*nn_crash_at,
                                           *nn_crash_at + nn_outage);
    } else {
      injector.crash_and_restart_namenode(*nn_crash_at,
                                          *nn_crash_at + nn_outage);
    }
  }
  if (!plan.empty()) plan.apply(injector);
  if (flags.has("chaos-rates")) {
    faults::ChaosRates rates = parse_chaos_rates(flags.get("chaos-rates"));
    if (const auto factor = fail_slow_factor_flag(flags)) {
      rates.fail_slow_factor = *factor;
    }
    // Warm failover needs a standby tailing the log before the first crash.
    if (rates.nn_failover) cluster.enable_standby();
    injector.start_chaos(rates);
  }
  LogLevel log_level = LogLevel::kWarn;
  bool log_level_chosen = false;
  if (flags.get_bool("verbose")) {
    log_level = LogLevel::kInfo;
    log_level_chosen = true;
  }
  // --log-level wins over --verbose; validated in main() before any run.
  if (const std::string level = flags.get("log-level"); !level.empty()) {
    log_level_chosen = parse_log_level(level, log_level);
  }
  if (log_level_chosen) {
    Logger::instance().set_level(log_level);
    Logger::instance().set_time_source(
        [&cluster] { return cluster.sim().now(); });
  }

  RunOutcome outcome;
  const Bytes size =
      static_cast<Bytes>(flags.get_double("size-gb").value_or(1.0) *
                         static_cast<double>(kGiB));

  std::unique_ptr<sim::PeriodicTask> sampler;
  if (flags.get_bool("timeline")) {
    sampler = std::make_unique<sim::PeriodicTask>(
        cluster.sim(), seconds(1), [&cluster, &outcome] {
          const hdfs::OutputStreamBase* stream = cluster.latest_stream();
          outcome.concurrency.record(
              cluster.sim().now(),
              stream != nullptr && !stream->finished()
                  ? static_cast<double>(stream->active_pipeline_count())
                  : 0.0);
        });
    sampler->start_with_delay(0);
  }

  outcome.stats = cluster.run_upload("/data/cli.bin", size, protocol);
  if (client_crash_at) {
    // The upload callback fired (success, or abort at crash time); now
    // drive the simulation until lease recovery has closed the file — it
    // must never stay under-construction past the hard limit plus the
    // recovery retry budget.
    const hdfs::HdfsConfig& cfg = cluster.config();
    sim::Simulation& sim = cluster.sim();
    if (sim.now() <= *client_crash_at) {
      sim.run_until(*client_crash_at + milliseconds(1));
    }
    const SimTime deadline =
        sim.now() + cfg.lease_hard_limit + cfg.lease_monitor_interval +
        cfg.lease_recovery_retry_interval *
            (cfg.lease_recovery_max_attempts + 2);
    while (sim.now() < deadline) {
      const hdfs::FileEntry* entry =
          cluster.namenode().file_by_path("/data/cli.bin");
      if (entry == nullptr || entry->state == hdfs::FileState::kClosed) break;
      sim.run_until(sim.now() + milliseconds(250));
    }
    const hdfs::FileEntry* entry =
        cluster.namenode().file_by_path("/data/cli.bin");
    if (entry != nullptr && entry->state != hdfs::FileState::kClosed) {
      std::fprintf(stderr,
                   "lease recovery failed to close the file within the "
                   "recovery budget\n");
      std::exit(1);
    }
  }
  if (nn_crash_at) {
    // Let the scheduled outage and recovery land even when the upload beat
    // the crash: the robustness counters and --editlog-out should reflect
    // the whole timeline, and a recovery that never completes is a bug
    // worth failing on, not silently truncating.
    sim::Simulation& sim = cluster.sim();
    const SimTime recovery_start = *nn_crash_at + nn_outage;
    if (sim.now() <= recovery_start) {
      sim.run_until(recovery_start + milliseconds(1));
    }
    const SimTime deadline = sim.now() + seconds(120);
    while (cluster.namenode_crashed() && sim.now() < deadline) {
      sim.run_until(sim.now() + milliseconds(250));
    }
    if (cluster.namenode_crashed()) {
      std::fprintf(stderr,
                   "namenode recovery did not complete within the budget\n");
      std::exit(1);
    }
  }
  if (flags.get_bool("read-back") && !outcome.stats.failed) {
    // Let every scheduled rot land before reading: a --bitrot past the
    // upload's end would otherwise never fire (the simulation stops when
    // the last requested operation completes).
    SimTime last_rot = 0;
    for (const workload::FaultPlan::Bitrot& b : plan.bitrots) {
      last_rot = std::max(last_rot, b.at);
    }
    if (cluster.sim().now() <= last_rot) {
      cluster.sim().run_until(last_rot + milliseconds(1));
    }
    // Read the file back through the checksum-verifying stream; rotted
    // replicas fail over and get reported to the namenode.
    outcome.read = cluster.run_download("/data/cli.bin");
  }
  outcome.events = cluster.sim().events_executed();
  outcome.summary.fold(outcome.stats);
  if (outcome.read) outcome.summary.fold_read(*outcome.read);
  fold_cluster_counters(outcome.summary, cluster, injector);
  if (flags.has("editlog-out")) {
    outcome.editlog_json = cluster.edit_log().to_json();
  }
  // While the cluster is alive: quiescence monitors read the live registry
  // and a firing's dump wants the pending-event summary.
  if (metrics::flight_active()) {
    metrics::flight_recorder()->finish_run(cluster.sim().now());
  }
  if (sampler) sampler->stop();
  Logger::instance().set_level(LogLevel::kWarn);
  Logger::instance().set_time_source(nullptr);
  // The recorder outlives this cluster; its clock must not.
  if (trace::active()) trace::recorder()->set_time_source(nullptr);
  return outcome;
}

/// --sweep-seeds mode: N independent worlds per protocol, one per seed,
/// spread over --jobs worker threads. Share-nothing: each worker resets its
/// thread-local metrics registry and builds its own cluster, so every
/// per-seed result is identical to running that seed alone and the merged
/// report is independent of thread scheduling.
int run_sweeps(const FlagSet& flags,
               const std::vector<cluster::Protocol>& protocols) {
  const int seeds = static_cast<int>(flags.get_int("sweep-seeds").value_or(0));
  const int jobs = static_cast<int>(flags.get_int("jobs").value_or(0));
  const auto base_seed =
      static_cast<std::uint64_t>(flags.get_int("seed").value_or(42));
  const auto chaos_base =
      static_cast<std::uint64_t>(flags.get_int("chaos-seed").value_or(1));
  const Bytes size =
      static_cast<Bytes>(flags.get_double("size-gb").value_or(1.0) *
                         static_cast<double>(kGiB));
  // Parse the shared fault plan once so a malformed flag fails fast, before
  // any thread spawns.
  const workload::FaultPlan plan = plan_from_flags(flags);
  const bool open_loop = flags.has("clients");
  // Under the overload model, shed/timed-out jobs are the measured outcome,
  // not a harness error — same exemption injected faults get.
  const bool overload_model = flags.get_bool("nn-service-model") ||
                              flags.get_bool("nn-admission-control");
  const bool faults_active = flags.has("chaos-rates") || !plan.empty() ||
                             (open_loop && overload_model);
  const bool want_summary = flags.get_bool("fault-summary") || faults_active;
  // Flight recorder: one per worker (thread_local install), fragments merged
  // in seed order below so the export is independent of thread scheduling.
  const std::string timeseries_out = flags.get("timeseries-out");
  const bool want_timeseries = !timeseries_out.empty();
  const bool timeseries_csv = ends_with(timeseries_out, ".csv");
  metrics::FlightRecorderConfig flight_config;
  flight_config.sample_interval = sample_interval_flag(flags);

  int exit_code = 0;
  std::vector<double> mean_by_protocol;
  std::vector<std::string> timeseries_fragments;
  for (const cluster::Protocol protocol : protocols) {
    const harness::SweepSummary sweep = harness::run_seed_sweep(
        base_seed, seeds, jobs,
        [&](std::uint64_t seed, harness::SeedRun& run) {
          std::optional<metrics::FlightRecorder> flight;
          std::optional<metrics::ScopedFlightInstall> flight_install;
          if (want_timeseries) {
            flight.emplace(flight_config);
            flight_install.emplace(&*flight);
          }
          if (open_loop) {
            // Per-job stats fold through the observer; the synthetic
            // run.stats carries the makespan and completed bytes so the
            // sweep's seconds/throughput statistics stay meaningful.
            OpenLoopOutcome out = run_open_loop_once(
                flags, protocol, /*quiet=*/true, seed,
                chaos_base + (seed - base_seed));
            run.summary = std::move(out.summary);
            run.events = out.events;
            run.stats.started_at = out.result.started_at;
            run.stats.finished_at = out.result.finished_at;
            run.stats.file_size = out.result.bytes_completed;
            run.stats.failed = out.result.stuck > 0;
            if (flight) {
              run.timeseries =
                  timeseries_csv ? flight->csv_rows(0) : flight->run_json(0);
            }
            return;
          }
          metrics::global_registry().reset();
          if (flight) {
            flight->begin_run(cluster::protocol_name(protocol), seed);
          }
          cluster::Cluster cluster(spec_from_flags(flags, seed));
          faults::FaultInjector injector(cluster,
                                         chaos_base + (seed - base_seed));
          if (const auto throttle = flags.get_double("throttle-mbps");
              throttle && *throttle > 0) {
            cluster.throttle_cross_rack(Bandwidth::mbps(*throttle));
          }
          const auto slow_nodes = flags.get_int("slow-nodes").value_or(0);
          const double slow_mbps = flags.get_double("slow-mbps").value_or(50);
          for (std::int64_t i = 0; i < slow_nodes; ++i) {
            cluster.throttle_datanode(static_cast<std::size_t>(i),
                                      Bandwidth::mbps(slow_mbps));
          }
          if (!plan.empty()) plan.apply(injector);
          if (flags.has("chaos-rates")) {
            faults::ChaosRates rates =
                parse_chaos_rates(flags.get("chaos-rates"));
            if (const auto factor = fail_slow_factor_flag(flags)) {
              rates.fail_slow_factor = *factor;
            }
            if (rates.nn_failover) cluster.enable_standby();
            injector.start_chaos(rates);
          }
          run.stats = cluster.run_upload("/data/sweep.bin", size, protocol);
          run.events = cluster.sim().events_executed();
          run.summary.fold(run.stats);
          fold_cluster_counters(run.summary, cluster, injector);
          if (flight) {
            flight->finish_run(cluster.sim().now());
            run.timeseries =
                timeseries_csv ? flight->csv_rows(0) : flight->run_json(0);
          }
        });
    if (want_timeseries) {
      for (const harness::SeedRun& run : sweep.runs) {
        if (!run.timeseries.empty()) {
          timeseries_fragments.push_back(run.timeseries);
        }
      }
    }
    std::printf("%s sweep, %d seeds from %llu:\n%s",
                cluster::protocol_name(protocol), seeds,
                static_cast<unsigned long long>(base_seed),
                harness::render_sweep(sweep).c_str());
    if (want_summary) {
      std::printf("%s merged robustness:\n%s",
                  cluster::protocol_name(protocol),
                  metrics::render_fault_summary(sweep.merged).c_str());
    }
    mean_by_protocol.push_back(sweep.mean_seconds);
    if (sweep.errored > 0) exit_code = 1;
    if (!faults_active && sweep.merged.failed_uploads > 0) exit_code = 1;
  }
  if (mean_by_protocol.size() == 2 && mean_by_protocol[1] > 0) {
    std::printf("mean improvement: %.1f%%\n",
                (mean_by_protocol[0] / mean_by_protocol[1] - 1.0) * 100.0);
  }
  if (want_timeseries) {
    // Assemble a to_json()/to_csv()-shaped document from the per-worker
    // fragments; the envelope comes from a recorder with the same config.
    const metrics::FlightRecorder envelope(flight_config);
    std::string out;
    if (timeseries_csv) {
      out = envelope.csv_header();
      for (const std::string& fragment : timeseries_fragments) out += fragment;
    } else {
      out = "{" + envelope.header_json() + ",\"runs\":[\n";
      for (std::size_t i = 0; i < timeseries_fragments.size(); ++i) {
        if (i > 0) out += ",\n";
        out += timeseries_fragments[i];
      }
      out += "\n]}\n";
    }
    write_file_or_die(timeseries_out, out);
    std::fprintf(stderr, "time series written to %s\n", timeseries_out.c_str());
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("smarthsim");
  flags.declare("cluster", "small | medium | large | hetero", "small");
  flags.declare("datanodes", "datanode count for homogeneous clusters", "9");
  flags.declare("size-gb", "upload size in GiB (fractional ok)", "1");
  flags.declare("protocol", "hdfs | smarth | both", "both");
  flags.declare("throttle-mbps", "cross-rack throttle (0 = none)", "0");
  flags.declare("slow-nodes", "number of individually throttled datanodes",
                "0");
  flags.declare("slow-mbps", "bandwidth of the slow datanodes", "50");
  flags.declare("crash", "crash fault: <datanode>@<seconds>", "");
  flags.declare("rejoin", "reboot a crashed node: <datanode>@<seconds>", "");
  flags.declare("fail-slow",
                "fail-slow window: <datanode>@<from>-<until>[@<factor>]", "");
  flags.declare("fail-slow-factor",
                "fail-slow severity: slowdown multiplier (> 0) applied to "
                "--fail-slow windows and chaos failslow events", "");
  flags.declare("flap", "NIC flap window: <datanode>@<down>-<up>", "");
  flags.declare("client-crash",
                "writer crash at <seconds>; lease recovery closes the file",
                "");
  flags.declare("nn-crash",
                "namenode crash at <seconds>; recovery starts after "
                "--nn-outage", "");
  flags.declare("nn-outage",
                "seconds between the namenode crash and recovery start", "3");
  flags.declare("editlog-out",
                "write the namenode edit log as JSON after the run(s)", "");
  flags.declare("bitrot",
                "at-rest chunk rot: <datanode>@<seconds>[,...]", "");
  flags.declare("scan-mbps",
                "block-scanner scrub budget in MiB/s (0 = scanner off)", "0");
  flags.declare("chaos-rates",
                "seeded chaos, e.g. crash=2,bitrot=0.5,rpcloss=0.05", "");
  flags.declare("chaos-seed", "seed for the chaos engine's RNG", "1");
  flags.declare("block-mb", "HDFS block size in MiB", "64");
  flags.declare("replication", "replication factor", "3");
  flags.declare("seed", "simulation seed", "42");
  flags.declare("fidelity",
                "data-path granularity: packet (reference) | block "
                "(coalesced macro-transfers, ~10x fewer events)", "packet");
  flags.declare("fidelity-tolerance",
                "block-mode timing distortion ceiling as a fraction of a "
                "block's transfer time", "0.05");
  flags.declare("sweep-seeds",
                "run N independent seeds (counting up from --seed) per "
                "protocol and merge the results (0 = single-run mode)", "0");
  flags.declare("jobs",
                "worker threads for --sweep-seeds (0 = one per core)", "0");
  flags.declare("trace-out",
                "write a Chrome trace_event JSON of all runs (open in "
                "Perfetto / chrome://tracing)", "");
  flags.declare("metrics-out",
                "write metrics registry snapshots; .csv extension selects "
                "CSV, anything else JSON", "");
  flags.declare("timeseries-out",
                "write flight-recorder time series (one sample per "
                "--sample-interval of simulated time, plus watchdog dumps); "
                ".csv extension selects CSV, anything else JSON", "");
  flags.declare("sample-interval",
                "flight-recorder sampling cadence in simulated seconds "
                "(fractional ok)", "1");
  flags.declare("log-level",
                "log threshold: trace|debug|info|warn|error|off "
                "(overrides --verbose)", "");
  flags.declare_bool("straggler-report",
                     "print a per-upload critical-path breakdown naming the "
                     "dominant straggler datanode");
  flags.declare_bool("read-back",
                     "read the file back after the upload, verifying "
                     "checksums and failing over rotted replicas");
  flags.declare_bool("timeline", "print a pipeline-concurrency timeline");
  flags.declare_bool("nn-failover",
                     "recover the crashed namenode by promoting the warm "
                     "standby instead of a cold restart");
  flags.declare("clients",
                "open-loop mode: tenant client hosts generating Poisson "
                "arrivals (round-robin over racks); replaces the single "
                "upload", "");
  flags.declare("arrival-rate",
                "open-loop aggregate arrival rate in jobs/s "
                "(default: 0.2 per client)", "");
  flags.declare("zipf-s",
                "open-loop Zipf file-size exponent (rank k ~ k^-s)", "1.2");
  flags.declare("open-loop-duration",
                "open-loop arrival window in seconds", "60");
  flags.declare_bool("nn-service-model",
                     "model namenode RPC service capacity: a single-server "
                     "queue with per-op service costs (undefended FIFO)");
  flags.declare_bool("nn-admission-control",
                     "namenode overload defense: priority bands, bounded "
                     "queue with load shedding, heartbeat batching, "
                     "per-client addBlock caps (implies --nn-service-model)");
  flags.declare_bool("hedged-reads",
                     "gray-failure read defense: race a second replica when "
                     "a block read stalls past the hedge threshold");
  flags.declare_bool("slow-evict",
                     "gray-failure write defense: evict a mid-block "
                     "straggler datanode and splice in a replacement");
  flags.declare_bool("fault-summary", "print robustness counters per run");
  flags.declare_bool("verbose", "protocol-level logging");
  flags.declare_bool("help", "show usage");

  if (const Status parsed = flags.parse(argc, argv); !parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.error().to_string().c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.get_bool("help")) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }

  if (const std::string level = flags.get("log-level"); !level.empty()) {
    LogLevel parsed;
    if (!parse_log_level(level, parsed)) {
      std::fprintf(stderr, "unknown --log-level=%s\n", level.c_str());
      return 2;
    }
  }
  if (const std::string fidelity = flags.get("fidelity");
      fidelity != "packet" && fidelity != "block") {
    std::fprintf(stderr, "unknown --fidelity=%s (expected packet or block)\n",
                 fidelity.c_str());
    return 2;
  }
  // Validate severity eagerly: a bad --fail-slow-factor must exit 2 even
  // when no fault flag consumes it this run.
  (void)fail_slow_factor_flag(flags);
  // Open-loop parameters fail eagerly too: a silently-ignored or
  // silently-clamped rate would run the wrong saturation experiment.
  const bool open_loop = flags.has("clients");
  if (open_loop) {
    const auto clients = flags.get_int("clients");
    if (!clients || *clients <= 0) {
      fault_flag_error("clients", "must be a positive integer, got " +
                                      flags.get("clients"));
    }
  }
  if (flags.has("arrival-rate")) {
    if (!open_loop) {
      fault_flag_error("arrival-rate", "requires --clients (open-loop mode)");
    }
    const auto rate = flags.get_double("arrival-rate");
    if (!rate || *rate <= 0) {
      fault_flag_error("arrival-rate", "must be a positive number, got " +
                                           flags.get("arrival-rate"));
    }
  }
  if (flags.has("zipf-s")) {
    if (!open_loop) {
      fault_flag_error("zipf-s", "requires --clients (open-loop mode)");
    }
    const auto zipf = flags.get_double("zipf-s");
    if (!zipf || *zipf <= 0) {
      fault_flag_error("zipf-s", "must be a positive number, got " +
                                     flags.get("zipf-s"));
    }
  }
  if (flags.has("open-loop-duration")) {
    if (!open_loop) {
      fault_flag_error("open-loop-duration",
                       "requires --clients (open-loop mode)");
    }
    const auto duration = flags.get_double("open-loop-duration");
    if (!duration || *duration <= 0) {
      fault_flag_error("open-loop-duration",
                       "must be a positive number of seconds, got " +
                           flags.get("open-loop-duration"));
    }
  }
  const std::string trace_out = flags.get("trace-out");
  const std::string metrics_out = flags.get("metrics-out");
  const bool want_straggler = flags.get_bool("straggler-report");
  trace::TraceRecorder recorder;
  if (!trace_out.empty() || want_straggler) trace::install(&recorder);

  // Flight recorder: validate the cadence eagerly (a bad --sample-interval
  // exits 2 even without --timeseries-out), install only when requested —
  // a null recorder schedules nothing and costs nothing. Sweep workers
  // install their own thread_local recorders inside run_sweeps.
  const std::string timeseries_out = flags.get("timeseries-out");
  metrics::FlightRecorderConfig flight_config;
  flight_config.sample_interval = sample_interval_flag(flags);
  metrics::FlightRecorder flight(flight_config);
  if (!timeseries_out.empty()) metrics::install_flight_recorder(&flight);
  const auto write_timeseries = [&flight, &timeseries_out] {
    if (timeseries_out.empty()) return;
    write_file_or_die(timeseries_out, ends_with(timeseries_out, ".csv")
                                          ? flight.to_csv()
                                          : flight.to_json());
    std::fprintf(stderr, "time series written to %s\n",
                 timeseries_out.c_str());
  };

  const std::string protocol_choice = flags.get("protocol");
  std::vector<cluster::Protocol> protocols;
  if (protocol_choice == "hdfs" || protocol_choice == "both") {
    protocols.push_back(cluster::Protocol::kHdfs);
  }
  if (protocol_choice == "smarth" || protocol_choice == "both") {
    protocols.push_back(cluster::Protocol::kSmarth);
  }
  if (protocols.empty()) {
    std::fprintf(stderr, "unknown --protocol=%s\n", protocol_choice.c_str());
    return 2;
  }

  if (flags.get_int("sweep-seeds").value_or(0) > 0) {
    // Sweep mode merges N share-nothing runs; the single-run observability
    // attachments (trace, per-run metrics export, timelines, client-crash
    // drive loop, read-back) are per-world and do not compose across it.
    if (!trace_out.empty() || !metrics_out.empty() || want_straggler ||
        flags.get_bool("timeline") || flags.get_bool("read-back") ||
        flags.has("client-crash") || flags.has("nn-crash") ||
        flags.has("editlog-out")) {
      std::fprintf(stderr,
                   "--sweep-seeds does not combine with --trace-out, "
                   "--metrics-out, --straggler-report, --timeline, "
                   "--read-back, --client-crash, --nn-crash or "
                   "--editlog-out\n");
      return 2;
    }
    return run_sweeps(flags, protocols);
  }

  if (open_loop) {
    // The open-loop workload replaces the single upload; the single-upload
    // observability attachments don't describe it.
    if (flags.get_bool("read-back") || flags.has("client-crash") ||
        flags.has("nn-crash") || flags.get_bool("timeline") ||
        flags.has("editlog-out") || want_straggler || !trace_out.empty()) {
      std::fprintf(stderr,
                   "--clients (open-loop mode) does not combine with "
                   "--read-back, --client-crash, --nn-crash, --timeline, "
                   "--editlog-out, --straggler-report or --trace-out\n");
      return 2;
    }
    const bool overload_model = flags.get_bool("nn-service-model") ||
                                flags.get_bool("nn-admission-control");
    const bool ol_faults = flags.has("chaos-rates") || flags.has("crash") ||
                           flags.has("fail-slow") || flags.has("flap") ||
                           flags.has("bitrot") || overload_model;
    const bool ol_summary = flags.get_bool("fault-summary") || ol_faults;
    TextTable table({"protocol", "jobs", "completed", "failed", "stuck",
                     "goodput (MiB/s)", "p50 (s)", "p95 (s)", "p99 (s)",
                     "events"});
    std::vector<std::pair<std::string, std::string>> metric_snapshots;
    int exit_code = 0;
    for (const cluster::Protocol protocol : protocols) {
      const OpenLoopOutcome outcome =
          run_open_loop_once(flags, protocol, /*quiet=*/false);
      if (!metrics_out.empty()) {
        const std::string name = cluster::protocol_name(protocol);
        metric_snapshots.emplace_back(
            name, ends_with(metrics_out, ".csv")
                      ? metrics::global_registry().to_csv(name)
                      : metrics::global_registry().to_json());
      }
      const workload::OpenLoopResult& r = outcome.result;
      table.add_row({cluster::protocol_name(protocol), std::to_string(r.jobs),
                     std::to_string(r.completed), std::to_string(r.failed),
                     std::to_string(r.stuck),
                     TextTable::num(r.goodput_mibps(), 1),
                     TextTable::num(r.latency_quantile(0.50)),
                     TextTable::num(r.latency_quantile(0.95)),
                     TextTable::num(r.latency_quantile(0.99)),
                     std::to_string(outcome.events)});
      if (ol_summary) {
        std::printf("%s robustness:\n%s", cluster::protocol_name(protocol),
                    metrics::render_fault_summary(outcome.summary).c_str());
      }
      // Without faults or an overload model, every offered job must finish
      // cleanly; a stuck or failed job is a harness error, not a result.
      if (!ol_faults && (r.stuck > 0 || r.failed > 0)) {
        std::fprintf(stderr, "%s open-loop run left %d stuck / %d failed "
                             "jobs with no faults active\n",
                     cluster::protocol_name(protocol), r.stuck, r.failed);
        exit_code = 1;
      }
    }
    std::printf("%s", table.to_string().c_str());
    if (!metrics_out.empty()) {
      std::string out;
      if (ends_with(metrics_out, ".csv")) {
        out = "protocol,kind,name,count,value,mean,p50,p95,p99,min,max\n";
        for (const auto& [name, body] : metric_snapshots) out += body;
      } else {
        out = "{";
        for (std::size_t i = 0; i < metric_snapshots.size(); ++i) {
          if (i > 0) out += ",";
          out += "\"" + metric_snapshots[i].first +
                 "\":" + metric_snapshots[i].second;
        }
        out += "}\n";
      }
      write_file_or_die(metrics_out, out);
      std::fprintf(stderr, "metrics written to %s\n", metrics_out.c_str());
    }
    write_timeseries();
    return exit_code;
  }

  // Under injected faults a failed upload is a legitimate outcome worth
  // reporting (clean failure, not a hang); without faults it is an error.
  const bool faults_active = flags.has("chaos-rates") || flags.has("crash") ||
                             flags.has("fail-slow") || flags.has("flap") ||
                             flags.has("client-crash") ||
                             flags.has("nn-crash") || flags.has("bitrot");
  const bool want_summary = flags.get_bool("fault-summary") || faults_active;

  TextTable table({"protocol", "seconds", "throughput (Mbps)", "blocks",
                   "pipelines", "max concurrent", "recoveries", "events"});
  std::vector<double> seconds_by_protocol;
  // Per-protocol registry snapshots, captured before the next run resets the
  // registry.
  std::vector<std::pair<std::string, std::string>> metric_snapshots;
  std::vector<std::pair<std::string, std::string>> editlog_snapshots;
  std::string straggler_text;
  for (const cluster::Protocol protocol : protocols) {
    const RunOutcome outcome = run_once(flags, protocol);
    if (flags.has("editlog-out")) {
      editlog_snapshots.emplace_back(cluster::protocol_name(protocol),
                                     outcome.editlog_json);
    }
    if (!metrics_out.empty()) {
      const std::string name = cluster::protocol_name(protocol);
      metric_snapshots.emplace_back(
          name, ends_with(metrics_out, ".csv")
                    ? metrics::global_registry().to_csv(name)
                    : metrics::global_registry().to_json());
    }
    if (want_straggler) {
      const trace::StragglerReport report =
          trace::straggler_report(recorder, recorder.current_run());
      straggler_text += std::string(cluster::protocol_name(protocol)) +
                        " straggler attribution:\n" + report.text;
    }
    if (outcome.stats.failed) {
      std::fprintf(stderr, "%s upload failed: %s\n",
                   cluster::protocol_name(protocol),
                   outcome.stats.failure_reason.c_str());
      if (!faults_active) return 1;
    }
    if (outcome.read && outcome.read->failed) {
      std::fprintf(stderr, "%s read-back failed: %s\n",
                   cluster::protocol_name(protocol),
                   outcome.read->failure_reason.c_str());
      if (!faults_active) return 1;
    }
    seconds_by_protocol.push_back(to_seconds(outcome.stats.elapsed()));
    table.add_row({cluster::protocol_name(protocol),
                   TextTable::num(to_seconds(outcome.stats.elapsed())),
                   TextTable::num(outcome.stats.throughput().mbps(), 1),
                   std::to_string(outcome.stats.blocks),
                   std::to_string(outcome.stats.pipelines_created),
                   std::to_string(outcome.stats.max_concurrent_pipelines),
                   std::to_string(outcome.stats.recoveries),
                   std::to_string(outcome.events)});
    if (flags.get_bool("timeline") && !outcome.concurrency.empty()) {
      std::printf("%s\n", outcome.concurrency.render_ascii().c_str());
    }
    if (want_summary) {
      std::printf("%s robustness:\n%s", cluster::protocol_name(protocol),
                  metrics::render_fault_summary(outcome.summary).c_str());
    }
  }
  if (!straggler_text.empty()) std::printf("%s", straggler_text.c_str());
  if (!trace_out.empty()) {
    write_file_or_die(trace_out, trace::to_chrome_trace_json(recorder));
    std::fprintf(stderr, "trace written to %s\n", trace_out.c_str());
  }
  write_timeseries();
  if (!metrics_out.empty()) {
    std::string out;
    if (ends_with(metrics_out, ".csv")) {
      out = "protocol,kind,name,count,value,mean,p50,p95,p99,min,max\n";
      for (const auto& [name, body] : metric_snapshots) out += body;
    } else {
      out = "{";
      for (std::size_t i = 0; i < metric_snapshots.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"" + metric_snapshots[i].first +
               "\":" + metric_snapshots[i].second;
      }
      out += "}\n";
    }
    write_file_or_die(metrics_out, out);
    std::fprintf(stderr, "metrics written to %s\n", metrics_out.c_str());
  }
  if (const std::string editlog_out = flags.get("editlog-out");
      !editlog_out.empty()) {
    std::string out = "{";
    for (std::size_t i = 0; i < editlog_snapshots.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + editlog_snapshots[i].first +
             "\":" + editlog_snapshots[i].second;
    }
    out += "}\n";
    write_file_or_die(editlog_out, out);
    std::fprintf(stderr, "edit log written to %s\n", editlog_out.c_str());
  }
  std::printf("%s", table.to_string().c_str());
  if (seconds_by_protocol.size() == 2) {
    std::printf("improvement: %.1f%%\n",
                (seconds_by_protocol[0] / seconds_by_protocol[1] - 1.0) *
                    100.0);
  }
  return 0;
}
