# Flight-recorder CLI smoke, run as a ctest via cmake -P (a single add_test
# command cannot express "run twice and diff"). Checks that --timeseries-out
# produces a non-empty, structurally sane export, that the same seed yields a
# bit-identical document on a second run (the recorder's determinism
# contract), and that the CSV flavor carries the expected header.
#
# Expects -DSMARTHSIM=<path to the binary> and -DOUT_DIR=<writable dir>.

foreach(pass a b)
  execute_process(
    COMMAND ${SMARTHSIM} --cluster=small --size-gb=0.05 --block-mb=8
            --sample-interval=0.5
            --timeseries-out=${OUT_DIR}/smoke-timeseries-${pass}.json
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "smarthsim timeseries pass '${pass}' exited ${rc}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${OUT_DIR}/smoke-timeseries-a.json
          ${OUT_DIR}/smoke-timeseries-b.json
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "same-seed time series differ between identical runs")
endif()

file(READ ${OUT_DIR}/smoke-timeseries-a.json content)
string(LENGTH "${content}" len)
if(len LESS 200)
  message(FATAL_ERROR "time series export suspiciously small: ${len} bytes")
endif()
foreach(needle "\"sample_interval_ns\":500000000" "\"columns\":[\"t_ns\""
        "\"runs\":[" "\"samples\":[[")
  string(FIND "${content}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "time series export missing '${needle}'")
  endif()
endforeach()

# CSV flavor: selected by extension, header row first.
execute_process(
  COMMAND ${SMARTHSIM} --cluster=small --size-gb=0.05 --block-mb=8
          --timeseries-out=${OUT_DIR}/smoke-timeseries.csv
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "smarthsim timeseries CSV pass exited ${rc}")
endif()
file(READ ${OUT_DIR}/smoke-timeseries.csv csv)
string(FIND "${csv}" "run,seed,t_ns," pos)
if(NOT pos EQUAL 0)
  message(FATAL_ERROR "time series CSV export missing its header row")
endif()
