
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_threshold.cpp" "bench/CMakeFiles/bench_ablation_threshold.dir/bench_ablation_threshold.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_threshold.dir/bench_ablation_threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smarth_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smarth_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/smarth_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/smarth_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/smarth_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/smarth_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/smarth/CMakeFiles/smarth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/smarth_model.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/smarth_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/smarth_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/smarth_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/smarth_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
