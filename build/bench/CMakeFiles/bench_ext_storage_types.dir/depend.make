# Empty dependencies file for bench_ext_storage_types.
# This may be replaced when dependencies are built.
