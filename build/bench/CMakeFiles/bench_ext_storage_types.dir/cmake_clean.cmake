file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_storage_types.dir/bench_ext_storage_types.cpp.o"
  "CMakeFiles/bench_ext_storage_types.dir/bench_ext_storage_types.cpp.o.d"
  "bench_ext_storage_types"
  "bench_ext_storage_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_storage_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
