# Empty dependencies file for bench_fig10to12_contention.
# This may be replaced when dependencies are built.
