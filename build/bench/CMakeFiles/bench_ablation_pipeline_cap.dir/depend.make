# Empty dependencies file for bench_ablation_pipeline_cap.
# This may be replaced when dependencies are built.
