# Empty dependencies file for bench_fig6to9_throttle.
# This may be replaced when dependencies are built.
