file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6to9_throttle.dir/bench_fig6to9_throttle.cpp.o"
  "CMakeFiles/bench_fig6to9_throttle.dir/bench_fig6to9_throttle.cpp.o.d"
  "bench_fig6to9_throttle"
  "bench_fig6to9_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6to9_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
