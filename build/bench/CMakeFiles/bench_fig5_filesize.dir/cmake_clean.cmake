file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_filesize.dir/bench_fig5_filesize.cpp.o"
  "CMakeFiles/bench_fig5_filesize.dir/bench_fig5_filesize.cpp.o.d"
  "bench_fig5_filesize"
  "bench_fig5_filesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_filesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
