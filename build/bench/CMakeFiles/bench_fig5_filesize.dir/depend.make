# Empty dependencies file for bench_fig5_filesize.
# This may be replaced when dependencies are built.
