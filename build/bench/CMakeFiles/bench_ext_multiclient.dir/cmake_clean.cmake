file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multiclient.dir/bench_ext_multiclient.cpp.o"
  "CMakeFiles/bench_ext_multiclient.dir/bench_ext_multiclient.cpp.o.d"
  "bench_ext_multiclient"
  "bench_ext_multiclient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multiclient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
