file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_read_while_write.dir/bench_ext_read_while_write.cpp.o"
  "CMakeFiles/bench_ext_read_while_write.dir/bench_ext_read_while_write.cpp.o.d"
  "bench_ext_read_while_write"
  "bench_ext_read_while_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_read_while_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
