# Empty compiler generated dependencies file for bench_ext_read_while_write.
# This may be replaced when dependencies are built.
