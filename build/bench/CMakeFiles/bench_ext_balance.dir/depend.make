# Empty dependencies file for bench_ext_balance.
# This may be replaced when dependencies are built.
