file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_balance.dir/bench_ext_balance.cpp.o"
  "CMakeFiles/bench_ext_balance.dir/bench_ext_balance.cpp.o.d"
  "bench_ext_balance"
  "bench_ext_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
