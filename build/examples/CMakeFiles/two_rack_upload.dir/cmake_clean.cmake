file(REMOVE_RECURSE
  "CMakeFiles/two_rack_upload.dir/two_rack_upload.cpp.o"
  "CMakeFiles/two_rack_upload.dir/two_rack_upload.cpp.o.d"
  "two_rack_upload"
  "two_rack_upload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_rack_upload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
