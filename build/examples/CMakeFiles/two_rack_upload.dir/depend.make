# Empty dependencies file for two_rack_upload.
# This may be replaced when dependencies are built.
