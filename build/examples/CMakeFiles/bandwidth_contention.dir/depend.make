# Empty dependencies file for bandwidth_contention.
# This may be replaced when dependencies are built.
