file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_contention.dir/bandwidth_contention.cpp.o"
  "CMakeFiles/bandwidth_contention.dir/bandwidth_contention.cpp.o.d"
  "bandwidth_contention"
  "bandwidth_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
