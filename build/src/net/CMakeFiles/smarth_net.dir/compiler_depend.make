# Empty compiler generated dependencies file for smarth_net.
# This may be replaced when dependencies are built.
