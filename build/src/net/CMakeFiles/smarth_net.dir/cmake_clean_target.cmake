file(REMOVE_RECURSE
  "libsmarth_net.a"
)
