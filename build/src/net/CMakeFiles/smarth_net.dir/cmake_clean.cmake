file(REMOVE_RECURSE
  "CMakeFiles/smarth_net.dir/cross_traffic.cpp.o"
  "CMakeFiles/smarth_net.dir/cross_traffic.cpp.o.d"
  "CMakeFiles/smarth_net.dir/link.cpp.o"
  "CMakeFiles/smarth_net.dir/link.cpp.o.d"
  "CMakeFiles/smarth_net.dir/network.cpp.o"
  "CMakeFiles/smarth_net.dir/network.cpp.o.d"
  "CMakeFiles/smarth_net.dir/topology.cpp.o"
  "CMakeFiles/smarth_net.dir/topology.cpp.o.d"
  "libsmarth_net.a"
  "libsmarth_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarth_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
