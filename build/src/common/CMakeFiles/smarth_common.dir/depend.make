# Empty dependencies file for smarth_common.
# This may be replaced when dependencies are built.
