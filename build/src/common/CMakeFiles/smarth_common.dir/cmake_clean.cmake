file(REMOVE_RECURSE
  "CMakeFiles/smarth_common.dir/check.cpp.o"
  "CMakeFiles/smarth_common.dir/check.cpp.o.d"
  "CMakeFiles/smarth_common.dir/flags.cpp.o"
  "CMakeFiles/smarth_common.dir/flags.cpp.o.d"
  "CMakeFiles/smarth_common.dir/histogram.cpp.o"
  "CMakeFiles/smarth_common.dir/histogram.cpp.o.d"
  "CMakeFiles/smarth_common.dir/log.cpp.o"
  "CMakeFiles/smarth_common.dir/log.cpp.o.d"
  "CMakeFiles/smarth_common.dir/rng.cpp.o"
  "CMakeFiles/smarth_common.dir/rng.cpp.o.d"
  "CMakeFiles/smarth_common.dir/table.cpp.o"
  "CMakeFiles/smarth_common.dir/table.cpp.o.d"
  "CMakeFiles/smarth_common.dir/units.cpp.o"
  "CMakeFiles/smarth_common.dir/units.cpp.o.d"
  "libsmarth_common.a"
  "libsmarth_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarth_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
