# Empty compiler generated dependencies file for smarth_common.
# This may be replaced when dependencies are built.
