file(REMOVE_RECURSE
  "libsmarth_common.a"
)
