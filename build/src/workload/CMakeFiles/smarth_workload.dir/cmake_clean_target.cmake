file(REMOVE_RECURSE
  "libsmarth_workload.a"
)
