file(REMOVE_RECURSE
  "CMakeFiles/smarth_workload.dir/fault_plan.cpp.o"
  "CMakeFiles/smarth_workload.dir/fault_plan.cpp.o.d"
  "CMakeFiles/smarth_workload.dir/upload_workload.cpp.o"
  "CMakeFiles/smarth_workload.dir/upload_workload.cpp.o.d"
  "libsmarth_workload.a"
  "libsmarth_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarth_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
