# Empty compiler generated dependencies file for smarth_workload.
# This may be replaced when dependencies are built.
