file(REMOVE_RECURSE
  "CMakeFiles/smarth_harness.dir/experiment.cpp.o"
  "CMakeFiles/smarth_harness.dir/experiment.cpp.o.d"
  "libsmarth_harness.a"
  "libsmarth_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarth_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
