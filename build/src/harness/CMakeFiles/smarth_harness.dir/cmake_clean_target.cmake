file(REMOVE_RECURSE
  "libsmarth_harness.a"
)
