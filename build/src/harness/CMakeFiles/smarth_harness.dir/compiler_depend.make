# Empty compiler generated dependencies file for smarth_harness.
# This may be replaced when dependencies are built.
