# Empty dependencies file for smarth_harness.
# This may be replaced when dependencies are built.
