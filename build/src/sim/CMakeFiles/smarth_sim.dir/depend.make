# Empty dependencies file for smarth_sim.
# This may be replaced when dependencies are built.
