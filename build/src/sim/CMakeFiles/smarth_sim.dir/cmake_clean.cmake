file(REMOVE_RECURSE
  "CMakeFiles/smarth_sim.dir/periodic_task.cpp.o"
  "CMakeFiles/smarth_sim.dir/periodic_task.cpp.o.d"
  "CMakeFiles/smarth_sim.dir/simulation.cpp.o"
  "CMakeFiles/smarth_sim.dir/simulation.cpp.o.d"
  "libsmarth_sim.a"
  "libsmarth_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarth_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
