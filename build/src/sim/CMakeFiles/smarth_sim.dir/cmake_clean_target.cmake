file(REMOVE_RECURSE
  "libsmarth_sim.a"
)
