file(REMOVE_RECURSE
  "libsmarth_rpc.a"
)
