# Empty dependencies file for smarth_rpc.
# This may be replaced when dependencies are built.
