file(REMOVE_RECURSE
  "CMakeFiles/smarth_rpc.dir/rpc_bus.cpp.o"
  "CMakeFiles/smarth_rpc.dir/rpc_bus.cpp.o.d"
  "libsmarth_rpc.a"
  "libsmarth_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarth_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
