file(REMOVE_RECURSE
  "libsmarth_metrics.a"
)
