# Empty dependencies file for smarth_metrics.
# This may be replaced when dependencies are built.
