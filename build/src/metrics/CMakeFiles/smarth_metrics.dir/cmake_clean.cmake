file(REMOVE_RECURSE
  "CMakeFiles/smarth_metrics.dir/report.cpp.o"
  "CMakeFiles/smarth_metrics.dir/report.cpp.o.d"
  "CMakeFiles/smarth_metrics.dir/timeline.cpp.o"
  "CMakeFiles/smarth_metrics.dir/timeline.cpp.o.d"
  "libsmarth_metrics.a"
  "libsmarth_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarth_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
