
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdfs/datanode.cpp" "src/hdfs/CMakeFiles/smarth_hdfs.dir/datanode.cpp.o" "gcc" "src/hdfs/CMakeFiles/smarth_hdfs.dir/datanode.cpp.o.d"
  "/root/repo/src/hdfs/dfs_client.cpp" "src/hdfs/CMakeFiles/smarth_hdfs.dir/dfs_client.cpp.o" "gcc" "src/hdfs/CMakeFiles/smarth_hdfs.dir/dfs_client.cpp.o.d"
  "/root/repo/src/hdfs/input_stream.cpp" "src/hdfs/CMakeFiles/smarth_hdfs.dir/input_stream.cpp.o" "gcc" "src/hdfs/CMakeFiles/smarth_hdfs.dir/input_stream.cpp.o.d"
  "/root/repo/src/hdfs/namenode.cpp" "src/hdfs/CMakeFiles/smarth_hdfs.dir/namenode.cpp.o" "gcc" "src/hdfs/CMakeFiles/smarth_hdfs.dir/namenode.cpp.o.d"
  "/root/repo/src/hdfs/output_stream.cpp" "src/hdfs/CMakeFiles/smarth_hdfs.dir/output_stream.cpp.o" "gcc" "src/hdfs/CMakeFiles/smarth_hdfs.dir/output_stream.cpp.o.d"
  "/root/repo/src/hdfs/placement.cpp" "src/hdfs/CMakeFiles/smarth_hdfs.dir/placement.cpp.o" "gcc" "src/hdfs/CMakeFiles/smarth_hdfs.dir/placement.cpp.o.d"
  "/root/repo/src/hdfs/recovery.cpp" "src/hdfs/CMakeFiles/smarth_hdfs.dir/recovery.cpp.o" "gcc" "src/hdfs/CMakeFiles/smarth_hdfs.dir/recovery.cpp.o.d"
  "/root/repo/src/hdfs/transport.cpp" "src/hdfs/CMakeFiles/smarth_hdfs.dir/transport.cpp.o" "gcc" "src/hdfs/CMakeFiles/smarth_hdfs.dir/transport.cpp.o.d"
  "/root/repo/src/hdfs/types.cpp" "src/hdfs/CMakeFiles/smarth_hdfs.dir/types.cpp.o" "gcc" "src/hdfs/CMakeFiles/smarth_hdfs.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smarth_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smarth_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/smarth_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/smarth_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/smarth_rpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
