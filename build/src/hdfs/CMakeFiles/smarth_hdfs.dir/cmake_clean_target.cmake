file(REMOVE_RECURSE
  "libsmarth_hdfs.a"
)
