# Empty dependencies file for smarth_hdfs.
# This may be replaced when dependencies are built.
