file(REMOVE_RECURSE
  "CMakeFiles/smarth_hdfs.dir/datanode.cpp.o"
  "CMakeFiles/smarth_hdfs.dir/datanode.cpp.o.d"
  "CMakeFiles/smarth_hdfs.dir/dfs_client.cpp.o"
  "CMakeFiles/smarth_hdfs.dir/dfs_client.cpp.o.d"
  "CMakeFiles/smarth_hdfs.dir/input_stream.cpp.o"
  "CMakeFiles/smarth_hdfs.dir/input_stream.cpp.o.d"
  "CMakeFiles/smarth_hdfs.dir/namenode.cpp.o"
  "CMakeFiles/smarth_hdfs.dir/namenode.cpp.o.d"
  "CMakeFiles/smarth_hdfs.dir/output_stream.cpp.o"
  "CMakeFiles/smarth_hdfs.dir/output_stream.cpp.o.d"
  "CMakeFiles/smarth_hdfs.dir/placement.cpp.o"
  "CMakeFiles/smarth_hdfs.dir/placement.cpp.o.d"
  "CMakeFiles/smarth_hdfs.dir/recovery.cpp.o"
  "CMakeFiles/smarth_hdfs.dir/recovery.cpp.o.d"
  "CMakeFiles/smarth_hdfs.dir/transport.cpp.o"
  "CMakeFiles/smarth_hdfs.dir/transport.cpp.o.d"
  "CMakeFiles/smarth_hdfs.dir/types.cpp.o"
  "CMakeFiles/smarth_hdfs.dir/types.cpp.o.d"
  "libsmarth_hdfs.a"
  "libsmarth_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarth_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
