file(REMOVE_RECURSE
  "libsmarth_core.a"
)
