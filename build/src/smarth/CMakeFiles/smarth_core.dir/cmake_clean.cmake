file(REMOVE_RECURSE
  "CMakeFiles/smarth_core.dir/global_optimizer.cpp.o"
  "CMakeFiles/smarth_core.dir/global_optimizer.cpp.o.d"
  "CMakeFiles/smarth_core.dir/local_optimizer.cpp.o"
  "CMakeFiles/smarth_core.dir/local_optimizer.cpp.o.d"
  "CMakeFiles/smarth_core.dir/smarth_stream.cpp.o"
  "CMakeFiles/smarth_core.dir/smarth_stream.cpp.o.d"
  "CMakeFiles/smarth_core.dir/speed_tracker.cpp.o"
  "CMakeFiles/smarth_core.dir/speed_tracker.cpp.o.d"
  "libsmarth_core.a"
  "libsmarth_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarth_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
