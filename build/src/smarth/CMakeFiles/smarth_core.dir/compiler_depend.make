# Empty compiler generated dependencies file for smarth_core.
# This may be replaced when dependencies are built.
