file(REMOVE_RECURSE
  "CMakeFiles/smarth_storage.dir/block_store.cpp.o"
  "CMakeFiles/smarth_storage.dir/block_store.cpp.o.d"
  "CMakeFiles/smarth_storage.dir/disk.cpp.o"
  "CMakeFiles/smarth_storage.dir/disk.cpp.o.d"
  "CMakeFiles/smarth_storage.dir/staging_buffer.cpp.o"
  "CMakeFiles/smarth_storage.dir/staging_buffer.cpp.o.d"
  "libsmarth_storage.a"
  "libsmarth_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarth_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
