
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block_store.cpp" "src/storage/CMakeFiles/smarth_storage.dir/block_store.cpp.o" "gcc" "src/storage/CMakeFiles/smarth_storage.dir/block_store.cpp.o.d"
  "/root/repo/src/storage/disk.cpp" "src/storage/CMakeFiles/smarth_storage.dir/disk.cpp.o" "gcc" "src/storage/CMakeFiles/smarth_storage.dir/disk.cpp.o.d"
  "/root/repo/src/storage/staging_buffer.cpp" "src/storage/CMakeFiles/smarth_storage.dir/staging_buffer.cpp.o" "gcc" "src/storage/CMakeFiles/smarth_storage.dir/staging_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smarth_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smarth_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
