file(REMOVE_RECURSE
  "libsmarth_storage.a"
)
