# Empty compiler generated dependencies file for smarth_storage.
# This may be replaced when dependencies are built.
