# Empty dependencies file for smarth_cluster.
# This may be replaced when dependencies are built.
