file(REMOVE_RECURSE
  "libsmarth_cluster.a"
)
