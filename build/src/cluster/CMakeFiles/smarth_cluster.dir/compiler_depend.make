# Empty compiler generated dependencies file for smarth_cluster.
# This may be replaced when dependencies are built.
