file(REMOVE_RECURSE
  "CMakeFiles/smarth_cluster.dir/cluster.cpp.o"
  "CMakeFiles/smarth_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/smarth_cluster.dir/cluster_spec.cpp.o"
  "CMakeFiles/smarth_cluster.dir/cluster_spec.cpp.o.d"
  "CMakeFiles/smarth_cluster.dir/instance_profile.cpp.o"
  "CMakeFiles/smarth_cluster.dir/instance_profile.cpp.o.d"
  "libsmarth_cluster.a"
  "libsmarth_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarth_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
