file(REMOVE_RECURSE
  "libsmarth_model.a"
)
