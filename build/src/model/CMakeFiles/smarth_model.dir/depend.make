# Empty dependencies file for smarth_model.
# This may be replaced when dependencies are built.
