file(REMOVE_RECURSE
  "CMakeFiles/smarth_model.dir/cost_model.cpp.o"
  "CMakeFiles/smarth_model.dir/cost_model.cpp.o.d"
  "libsmarth_model.a"
  "libsmarth_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarth_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
