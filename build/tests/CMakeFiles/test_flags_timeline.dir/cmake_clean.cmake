file(REMOVE_RECURSE
  "CMakeFiles/test_flags_timeline.dir/test_flags_timeline.cpp.o"
  "CMakeFiles/test_flags_timeline.dir/test_flags_timeline.cpp.o.d"
  "test_flags_timeline"
  "test_flags_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flags_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
