file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_harness.dir/test_metrics_harness.cpp.o"
  "CMakeFiles/test_metrics_harness.dir/test_metrics_harness.cpp.o.d"
  "test_metrics_harness"
  "test_metrics_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
