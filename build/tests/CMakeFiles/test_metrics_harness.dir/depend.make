# Empty dependencies file for test_metrics_harness.
# This may be replaced when dependencies are built.
