file(REMOVE_RECURSE
  "CMakeFiles/prop_invariants.dir/prop_invariants.cpp.o"
  "CMakeFiles/prop_invariants.dir/prop_invariants.cpp.o.d"
  "prop_invariants"
  "prop_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
