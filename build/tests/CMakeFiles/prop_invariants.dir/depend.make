# Empty dependencies file for prop_invariants.
# This may be replaced when dependencies are built.
