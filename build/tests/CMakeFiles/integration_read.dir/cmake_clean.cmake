file(REMOVE_RECURSE
  "CMakeFiles/integration_read.dir/integration_read.cpp.o"
  "CMakeFiles/integration_read.dir/integration_read.cpp.o.d"
  "integration_read"
  "integration_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
