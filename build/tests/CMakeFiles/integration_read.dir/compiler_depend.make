# Empty compiler generated dependencies file for integration_read.
# This may be replaced when dependencies are built.
