file(REMOVE_RECURSE
  "CMakeFiles/test_datanode.dir/test_datanode.cpp.o"
  "CMakeFiles/test_datanode.dir/test_datanode.cpp.o.d"
  "test_datanode"
  "test_datanode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datanode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
