file(REMOVE_RECURSE
  "CMakeFiles/integration_heterogeneous.dir/integration_heterogeneous.cpp.o"
  "CMakeFiles/integration_heterogeneous.dir/integration_heterogeneous.cpp.o.d"
  "integration_heterogeneous"
  "integration_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
