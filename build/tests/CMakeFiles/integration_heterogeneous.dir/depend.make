# Empty dependencies file for integration_heterogeneous.
# This may be replaced when dependencies are built.
