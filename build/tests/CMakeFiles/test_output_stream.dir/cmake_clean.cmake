file(REMOVE_RECURSE
  "CMakeFiles/test_output_stream.dir/test_output_stream.cpp.o"
  "CMakeFiles/test_output_stream.dir/test_output_stream.cpp.o.d"
  "test_output_stream"
  "test_output_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_output_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
