# Empty compiler generated dependencies file for test_output_stream.
# This may be replaced when dependencies are built.
