# Empty dependencies file for prop_fault_determinism.
# This may be replaced when dependencies are built.
