file(REMOVE_RECURSE
  "CMakeFiles/prop_fault_determinism.dir/prop_fault_determinism.cpp.o"
  "CMakeFiles/prop_fault_determinism.dir/prop_fault_determinism.cpp.o.d"
  "prop_fault_determinism"
  "prop_fault_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_fault_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
