file(REMOVE_RECURSE
  "CMakeFiles/integration_smarth.dir/integration_smarth.cpp.o"
  "CMakeFiles/integration_smarth.dir/integration_smarth.cpp.o.d"
  "integration_smarth"
  "integration_smarth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_smarth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
