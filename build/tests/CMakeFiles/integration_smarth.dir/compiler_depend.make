# Empty compiler generated dependencies file for integration_smarth.
# This may be replaced when dependencies are built.
