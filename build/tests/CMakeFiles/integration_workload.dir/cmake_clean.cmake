file(REMOVE_RECURSE
  "CMakeFiles/integration_workload.dir/integration_workload.cpp.o"
  "CMakeFiles/integration_workload.dir/integration_workload.cpp.o.d"
  "integration_workload"
  "integration_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
