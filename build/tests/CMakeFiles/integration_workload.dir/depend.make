# Empty dependencies file for integration_workload.
# This may be replaced when dependencies are built.
