# Empty compiler generated dependencies file for integration_fault_tolerance.
# This may be replaced when dependencies are built.
