file(REMOVE_RECURSE
  "CMakeFiles/integration_fault_tolerance.dir/integration_fault_tolerance.cpp.o"
  "CMakeFiles/integration_fault_tolerance.dir/integration_fault_tolerance.cpp.o.d"
  "integration_fault_tolerance"
  "integration_fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
