# Empty compiler generated dependencies file for integration_partition.
# This may be replaced when dependencies are built.
