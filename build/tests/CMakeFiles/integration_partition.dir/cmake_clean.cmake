file(REMOVE_RECURSE
  "CMakeFiles/integration_partition.dir/integration_partition.cpp.o"
  "CMakeFiles/integration_partition.dir/integration_partition.cpp.o.d"
  "integration_partition"
  "integration_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
