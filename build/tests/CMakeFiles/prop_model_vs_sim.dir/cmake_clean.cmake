file(REMOVE_RECURSE
  "CMakeFiles/prop_model_vs_sim.dir/prop_model_vs_sim.cpp.o"
  "CMakeFiles/prop_model_vs_sim.dir/prop_model_vs_sim.cpp.o.d"
  "prop_model_vs_sim"
  "prop_model_vs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_model_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
