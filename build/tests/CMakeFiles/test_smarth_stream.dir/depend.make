# Empty dependencies file for test_smarth_stream.
# This may be replaced when dependencies are built.
