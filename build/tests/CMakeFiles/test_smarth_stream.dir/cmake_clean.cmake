file(REMOVE_RECURSE
  "CMakeFiles/test_smarth_stream.dir/test_smarth_stream.cpp.o"
  "CMakeFiles/test_smarth_stream.dir/test_smarth_stream.cpp.o.d"
  "test_smarth_stream"
  "test_smarth_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smarth_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
