file(REMOVE_RECURSE
  "CMakeFiles/integration_upload.dir/integration_upload.cpp.o"
  "CMakeFiles/integration_upload.dir/integration_upload.cpp.o.d"
  "integration_upload"
  "integration_upload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_upload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
