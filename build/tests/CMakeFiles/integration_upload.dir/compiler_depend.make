# Empty compiler generated dependencies file for integration_upload.
# This may be replaced when dependencies are built.
