file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_spec.dir/test_cluster_spec.cpp.o"
  "CMakeFiles/test_cluster_spec.dir/test_cluster_spec.cpp.o.d"
  "test_cluster_spec"
  "test_cluster_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
