file(REMOVE_RECURSE
  "CMakeFiles/prop_network_conservation.dir/prop_network_conservation.cpp.o"
  "CMakeFiles/prop_network_conservation.dir/prop_network_conservation.cpp.o.d"
  "prop_network_conservation"
  "prop_network_conservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_network_conservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
