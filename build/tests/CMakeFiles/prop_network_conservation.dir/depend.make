# Empty dependencies file for prop_network_conservation.
# This may be replaced when dependencies are built.
