file(REMOVE_RECURSE
  "CMakeFiles/test_input_stream.dir/test_input_stream.cpp.o"
  "CMakeFiles/test_input_stream.dir/test_input_stream.cpp.o.d"
  "test_input_stream"
  "test_input_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_input_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
