# Empty dependencies file for test_input_stream.
# This may be replaced when dependencies are built.
