file(REMOVE_RECURSE
  "CMakeFiles/test_link_fairness.dir/test_link_fairness.cpp.o"
  "CMakeFiles/test_link_fairness.dir/test_link_fairness.cpp.o.d"
  "test_link_fairness"
  "test_link_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
