# Empty dependencies file for test_link_fairness.
# This may be replaced when dependencies are built.
