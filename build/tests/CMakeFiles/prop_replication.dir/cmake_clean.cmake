file(REMOVE_RECURSE
  "CMakeFiles/prop_replication.dir/prop_replication.cpp.o"
  "CMakeFiles/prop_replication.dir/prop_replication.cpp.o.d"
  "prop_replication"
  "prop_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
