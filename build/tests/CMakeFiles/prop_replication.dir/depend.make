# Empty dependencies file for prop_replication.
# This may be replaced when dependencies are built.
