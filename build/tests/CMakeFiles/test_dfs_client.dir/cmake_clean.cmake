file(REMOVE_RECURSE
  "CMakeFiles/test_dfs_client.dir/test_dfs_client.cpp.o"
  "CMakeFiles/test_dfs_client.dir/test_dfs_client.cpp.o.d"
  "test_dfs_client"
  "test_dfs_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfs_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
