# Empty dependencies file for smarthsim.
# This may be replaced when dependencies are built.
