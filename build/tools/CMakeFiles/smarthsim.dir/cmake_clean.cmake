file(REMOVE_RECURSE
  "CMakeFiles/smarthsim.dir/smarthsim.cpp.o"
  "CMakeFiles/smarthsim.dir/smarthsim.cpp.o.d"
  "smarthsim"
  "smarthsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarthsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
