# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/tools/smarthsim" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_tiny_run "/root/repo/build/tools/smarthsim" "--cluster=small" "--size-gb=0.05" "--block-mb=8" "--throttle-mbps=50" "--timeline")
set_tests_properties(cli_tiny_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_hetero "/root/repo/build/tools/smarthsim" "--cluster=hetero" "--size-gb=0.05" "--block-mb=8" "--protocol=smarth")
set_tests_properties(cli_hetero PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_flag "/root/repo/build/tools/smarthsim" "--no-such-flag")
set_tests_properties(cli_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
