// Protocol walkthrough: runs a tiny two-block upload under each protocol
// with full protocol logging, annotated against the paper's write workflow
// (§II steps 1-6 for HDFS, §III / Fig. 2 for SMARTH). Useful as a first
// read of how the pieces fit together.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "common/log.hpp"

using namespace smarth;

namespace {

void banner(const char* text) { std::printf("\n%s\n", text); }

void run(cluster::Protocol protocol) {
  cluster::ClusterSpec spec = cluster::small_cluster(/*seed=*/7);
  spec.hdfs.block_size = 1 * kMiB;    // two tiny blocks
  spec.hdfs.packet_payload = 256 * kKiB;  // a handful of packets each
  cluster::Cluster cluster(spec);
  cluster.throttle_cross_rack(Bandwidth::mbps(60));

  Logger::instance().set_level(LogLevel::kDebug);
  Logger::instance().set_time_source(
      [&cluster] { return cluster.sim().now(); });

  std::printf("\n================ %s upload of 2 MiB ================\n",
              cluster::protocol_name(protocol));
  if (protocol == cluster::Protocol::kHdfs) {
    banner("paper §II: (1) create() -> namespace checks; (2) split into "
           "packets;\n(3) pipeline streams packets; (4) ACKs travel back; "
           "(5) close(); (6) complete().");
  } else {
    banner("paper §III / Fig. 2: like HDFS until the first datanode holds "
           "the whole\nblock, then FNFA lets the client open the next "
           "pipeline while replicas\nstill drain in the background.");
  }

  const auto stats = cluster.run_upload("/walkthrough", 2 * kMiB, protocol);
  Logger::instance().set_level(LogLevel::kWarn);
  Logger::instance().set_time_source(nullptr);

  std::printf("\n-> %s finished in %s (%d pipelines, max %d concurrent)\n",
              cluster::protocol_name(protocol),
              format_duration(stats.elapsed()).c_str(),
              stats.pipelines_created, stats.max_concurrent_pipelines);
}

}  // namespace

int main() {
  run(cluster::Protocol::kHdfs);
  run(cluster::Protocol::kSmarth);
  std::printf(
      "\nCompare the traces: the HDFS run allocates block k+1 only after "
      "every ACK\nof block k returned; the SMARTH run allocates it on the "
      "FNFA, so the two\npipelines' lifetimes overlap.\n");
  return 0;
}
