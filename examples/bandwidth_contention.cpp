// Bandwidth-contention scenario (paper §V-B2): some datanodes' bandwidth is
// consumed by other tenants. Demonstrates two ways to model it — hard tc
// throttles on the nodes (as the paper did) and live background cross
// traffic — and shows SMARTH's optimizers steering pipelines away from the
// contended nodes.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "common/table.hpp"
#include "hdfs/namenode.hpp"
#include "net/cross_traffic.hpp"

using namespace smarth;

namespace {

int slow_head_count(cluster::Cluster& cluster, const std::string& path,
                    std::size_t slow_nodes) {
  const hdfs::FileEntry* entry = cluster.namenode().file_by_path(path);
  if (entry == nullptr) return -1;
  int count = 0;
  for (BlockId block : entry->blocks) {
    const hdfs::BlockRecord* record = cluster.namenode().block(block);
    if (record == nullptr || record->expected_targets.empty()) continue;
    for (std::size_t i = 0; i < slow_nodes; ++i) {
      if (record->expected_targets[0] == cluster.datanode_id(i)) ++count;
    }
  }
  return count;
}

}  // namespace

int main() {
  std::printf("Bandwidth contention: small cluster, 2 GiB file\n\n");

  // Part 1: hard throttles (the paper's method).
  TextTable table({"slow nodes @50Mbps", "HDFS (s)", "SMARTH (s)",
                   "improvement (%)", "blocks headed by a slow node"});
  for (std::size_t k : {0u, 1u, 3u, 5u}) {
    double secs[2];
    int slow_heads = 0;
    for (int p = 0; p < 2; ++p) {
      cluster::Cluster cluster(cluster::small_cluster(11));
      for (std::size_t i = 0; i < k; ++i) {
        cluster.throttle_datanode(i, Bandwidth::mbps(50));
      }
      const auto stats = cluster.run_upload(
          "/data/contend.bin", 2 * kGiB,
          p ? cluster::Protocol::kSmarth : cluster::Protocol::kHdfs);
      if (stats.failed) {
        std::printf("upload failed: %s\n", stats.failure_reason.c_str());
        return 1;
      }
      secs[p] = to_seconds(stats.elapsed());
      if (p == 1) slow_heads = slow_head_count(cluster, "/data/contend.bin", k);
    }
    table.add_row({std::to_string(k), TextTable::num(secs[0]),
                   TextTable::num(secs[1]),
                   TextTable::num((secs[0] / secs[1] - 1.0) * 100.0, 1),
                   std::to_string(slow_heads)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Part 2: live background traffic occupying two nodes' NICs instead of a
  // hard throttle.
  std::printf("live cross traffic on dn0<->dn1 instead of tc throttles:\n");
  double secs[2];
  for (int p = 0; p < 2; ++p) {
    cluster::Cluster cluster(cluster::small_cluster(11));
    net::CrossTraffic::Config traffic_cfg;
    traffic_cfg.concurrency = 4;
    net::CrossTraffic traffic(cluster.network(), cluster.datanode_id(0),
                              cluster.datanode_id(1), traffic_cfg);
    traffic.start();
    const auto stats = cluster.run_upload(
        "/data/contend2.bin", 2 * kGiB,
        p ? cluster::Protocol::kSmarth : cluster::Protocol::kHdfs);
    traffic.stop();
    secs[p] = stats.failed ? -1 : to_seconds(stats.elapsed());
  }
  std::printf("  HDFS %.2f s, SMARTH %.2f s, improvement %.1f%%\n", secs[0],
              secs[1], (secs[0] / secs[1] - 1.0) * 100.0);
  return 0;
}
