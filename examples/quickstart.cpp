// Quickstart: build a simulated nine-datanode HDFS cluster, upload one file
// with the stock HDFS protocol and once more with SMARTH, and print what
// happened. This is the smallest end-to-end use of the public API.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"

using namespace smarth;

int main() {
  std::printf("SMARTH quickstart: 2 GiB upload, small-instance cluster, "
              "100 Mbps cross-rack throttle\n\n");

  for (const cluster::Protocol protocol :
       {cluster::Protocol::kHdfs, cluster::Protocol::kSmarth}) {
    // Each run gets a fresh, identically seeded world.
    cluster::ClusterSpec spec = cluster::small_cluster(/*seed=*/42);
    cluster::Cluster cluster(spec);

    // The paper's two-rack scenario: replication traffic between racks is
    // throttled, exactly like their `tc` setup on EC2.
    cluster.throttle_cross_rack(Bandwidth::mbps(100));

    const hdfs::StreamStats stats =
        cluster.run_upload("/data/quickstart.bin", 2 * kGiB, protocol);

    if (stats.failed) {
      std::printf("%s: upload FAILED: %s\n",
                  cluster::protocol_name(protocol),
                  stats.failure_reason.c_str());
      return 1;
    }
    std::printf("%s:\n", cluster::protocol_name(protocol));
    std::printf("  upload time        %s\n",
                format_duration(stats.elapsed()).c_str());
    std::printf("  throughput         %s\n",
                format_bandwidth(stats.throughput()).c_str());
    std::printf("  blocks / pipelines %lld / %d (max %d concurrent)\n",
                static_cast<long long>(stats.blocks), stats.pipelines_created,
                stats.max_concurrent_pipelines);

    // Verify durability through the public inspection API.
    cluster.sim().run_until(cluster.sim().now() + seconds(2));
    std::printf("  fully replicated   %s\n\n",
                cluster.file_fully_replicated("/data/quickstart.bin")
                    ? "yes (3 finalized replicas per block)"
                    : "NO");
  }
  return 0;
}
