// Fault-tolerance walkthrough (paper §IV): crash a datanode and corrupt a
// packet during a SMARTH upload, with protocol-level logging switched on so
// the recovery sequence (error pipeline set -> probe -> truncate -> replace
// -> resume) is visible.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "common/log.hpp"
#include "workload/fault_plan.hpp"

using namespace smarth;

int main() {
  cluster::ClusterSpec spec = cluster::small_cluster(5);
  spec.hdfs.block_size = 16 * kMiB;  // smaller blocks -> more visible events
  spec.hdfs.ack_timeout = seconds(2);
  cluster::Cluster cluster(spec);

  // Show the recovery protocol as it happens.
  Logger::instance().set_level(LogLevel::kInfo);
  Logger::instance().set_time_source(
      [&cluster] { return cluster.sim().now(); });

  // Two faults: dn3 crashes five (simulated) seconds in, and dn6 corrupts
  // the 200th packet it receives.
  workload::FaultPlan plan;
  plan.crash(3, seconds(5)).corrupt(6, 200);
  plan.apply(cluster);

  std::printf("uploading 1 GiB with SMARTH; dn3 crashes at t=5s, dn6 "
              "corrupts a packet...\n\n");
  const auto stats =
      cluster.run_upload("/data/faulty.bin", 1 * kGiB,
                         cluster::Protocol::kSmarth);
  Logger::instance().set_level(LogLevel::kWarn);
  Logger::instance().set_time_source(nullptr);

  if (stats.failed) {
    std::printf("\nupload FAILED: %s\n", stats.failure_reason.c_str());
    return 1;
  }
  std::printf("\nupload completed despite the faults:\n");
  std::printf("  time            %s\n",
              format_duration(stats.elapsed()).c_str());
  std::printf("  recoveries run  %d\n", stats.recoveries);

  cluster.sim().run_until(cluster.sim().now() + seconds(2));
  // The crashed node cannot hold its replicas; everything else must be
  // fully replicated across the survivors.
  Bytes survivor_bytes = 0;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    if (cluster.datanode(i).crashed()) continue;
    for (const auto& replica : cluster.datanode(i).block_store().all_replicas()) {
      if (replica.state == storage::ReplicaState::kFinalized) {
        survivor_bytes += replica.bytes;
      }
    }
  }
  std::printf("  finalized bytes on surviving nodes: %s (>= 2 replicas of "
              "1 GiB: %s)\n",
              format_bytes(survivor_bytes).c_str(),
              survivor_bytes >= 2 * kGiB ? "yes" : "NO");
  return 0;
}
