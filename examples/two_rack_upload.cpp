// Two-rack scenario walkthrough (paper §V-B1): sweep the cross-rack
// throttle and watch the single-pipeline protocol collapse to the slowest
// hop while SMARTH rides the client's first-hop bandwidth. Also demonstrates
// the speed records the client accumulates and reports to the namenode.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "common/table.hpp"
#include "hdfs/namenode.hpp"

using namespace smarth;

int main() {
  std::printf("Two-rack upload: medium cluster, 4 GiB file, throttle sweep\n");

  TextTable table({"cross-rack", "HDFS (s)", "SMARTH (s)", "improvement (%)",
                   "SMARTH max pipelines"});
  for (double throttle_mbps : {0.0, 150.0, 100.0, 50.0}) {
    double secs[2];
    int max_pipelines = 0;
    for (int p = 0; p < 2; ++p) {
      cluster::Cluster cluster(cluster::medium_cluster(7));
      if (throttle_mbps > 0) {
        cluster.throttle_cross_rack(Bandwidth::mbps(throttle_mbps));
      }
      const auto stats = cluster.run_upload(
          "/data/tworack.bin", 4 * kGiB,
          p ? cluster::Protocol::kSmarth : cluster::Protocol::kHdfs);
      if (stats.failed) {
        std::printf("upload failed: %s\n", stats.failure_reason.c_str());
        return 1;
      }
      secs[p] = to_seconds(stats.elapsed());
      if (p == 1) {
        max_pipelines = stats.max_concurrent_pipelines;
        // Show what the namenode learned about this client on the last run.
        if (throttle_mbps == 50.0) {
          std::printf("\nnamenode speed board after the 50 Mbps run:\n");
          for (const auto& record : cluster.namenode()
                                        .speed_board()
                                        .records_for(cluster.client().id())) {
            std::printf("  %-8s -> %s\n",
                        cluster.network()
                            .topology()
                            .network_location(record.datanode)
                            .c_str(),
                        format_bandwidth(record.speed).c_str());
          }
          std::printf("\n");
        }
      }
    }
    table.add_row({throttle_mbps > 0
                       ? std::to_string(static_cast<int>(throttle_mbps)) +
                             " Mbps"
                       : "default",
                   TextTable::num(secs[0]), TextTable::num(secs[1]),
                   TextTable::num((secs[0] / secs[1] - 1.0) * 100.0, 1),
                   std::to_string(max_pipelines)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nReading the table: HDFS is pinned to the cross-rack bottleneck "
      "(every block waits for all replica ACKs); SMARTH advances on the "
      "first datanode's FNFA and drains replicas through up to 3 "
      "background pipelines.\n");
  return 0;
}
