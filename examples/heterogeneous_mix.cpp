// Heterogeneous-cluster scenario (paper §V-B3): a mixed fleet of small,
// medium and large instances with no artificial throttling. Demonstrates how
// the client's speed records build up over the upload and how the global
// optimizer shifts first-datanode placement toward the faster instances.
#include <cstdio>
#include <map>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "common/table.hpp"
#include "hdfs/namenode.hpp"

using namespace smarth;

int main() {
  std::printf("Heterogeneous cluster: 3 small + 3 medium + 3 large "
              "datanodes, 4 GiB upload\n\n");

  double secs[2];
  for (int p = 0; p < 2; ++p) {
    cluster::Cluster cluster(cluster::heterogeneous_cluster(3));
    const auto protocol =
        p ? cluster::Protocol::kSmarth : cluster::Protocol::kHdfs;
    const auto stats =
        cluster.run_upload("/data/hetero.bin", 4 * kGiB, protocol);
    if (stats.failed) {
      std::printf("upload failed: %s\n", stats.failure_reason.c_str());
      return 1;
    }
    secs[p] = to_seconds(stats.elapsed());

    // Where did pipeline heads land, by instance type?
    std::map<std::string, int> heads;
    const hdfs::FileEntry* entry =
        cluster.namenode().file_by_path("/data/hetero.bin");
    for (BlockId block : entry->blocks) {
      const hdfs::BlockRecord* record = cluster.namenode().block(block);
      for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
        if (cluster.datanode_id(i) == record->expected_targets[0]) {
          heads[cluster.spec().datanodes[i].profile.name]++;
        }
      }
    }
    std::printf("%s: %.2f s; pipeline heads by instance type: small=%d "
                "medium=%d large=%d\n",
                cluster::protocol_name(protocol), secs[p], heads["small"],
                heads["medium"], heads["large"]);

    if (p == 1) {
      std::printf("\nclient speed records at the end of the SMARTH run:\n");
      TextTable table({"datanode", "type", "observed speed"});
      for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
        const auto speed =
            cluster.speed_tracker().speed(cluster.datanode_id(i));
        table.add_row({cluster.spec().datanodes[i].name,
                       cluster.spec().datanodes[i].profile.name,
                       speed ? format_bandwidth(*speed) : "(never first)"});
      }
      std::printf("%s", table.to_string().c_str());
    }
  }
  std::printf("\nimprovement: %.1f%% (paper: 41%% at 8 GB)\n",
              (secs[0] / secs[1] - 1.0) * 100.0);
  return 0;
}
